// Package eval provides the unified evaluation layer: every
// (configuration, benchmark) → (bips, watts) query in the system — from
// the detailed simulator or from fitted regression models — is routed
// through one batched, cached, cancellable Engine. The studies, the
// training pipeline, heuristic search and the exhaustive sweep all
// consume the same service, so parallelism, memoization, de-duplication
// and instrumentation live in exactly one place.
package eval

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/power"
	"repro/internal/regression"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Request identifies one evaluation: a fully-resolved design point and
// the benchmark to run it on. Requests are comparable and serve directly
// as cache keys.
type Request struct {
	Config arch.Config
	Bench  string
}

// Result is the outcome of one evaluation.
type Result struct {
	BIPS  float64
	Watts float64
}

// Evaluator maps one (configuration, benchmark) pair to (bips, watts).
// Implementations must be safe for concurrent use; the Engine calls them
// from many goroutines.
type Evaluator interface {
	Evaluate(cfg arch.Config, bench string) (bips, watts float64, err error)
}

// Func adapts a plain function to the Evaluator interface.
type Func func(cfg arch.Config, bench string) (bips, watts float64, err error)

// Evaluate implements Evaluator.
func (f Func) Evaluate(cfg arch.Config, bench string) (float64, float64, error) {
	return f(cfg, bench)
}

// RequestsFor builds one request per configuration against a single
// benchmark, preserving order.
func RequestsFor(cfgs []arch.Config, bench string) []Request {
	reqs := make([]Request, len(cfgs))
	for i, cfg := range cfgs {
		reqs[i] = Request{Config: cfg, Bench: bench}
	}
	return reqs
}

// Simulator is the detailed-simulation backend: it synthesizes (and
// memoizes) the benchmark trace, runs the cycle-accounting core model and
// derives power from the activity counts. Safe for concurrent use;
// traces are immutable once synthesized and sim.Run carries no shared
// state.
type Simulator struct {
	// TraceLen is the synthetic trace length per benchmark.
	TraceLen int

	// synth synthesizes a trace; defaults to trace.ForBenchmark.
	// Overridable so tests can observe and block synthesis.
	synth func(bench string, n int) (*trace.Trace, error)

	mu     sync.Mutex
	traces map[string]*traceEntry
}

// traceEntry is one benchmark's synthesis slot: the once runs the
// synthesis exactly once however many goroutines race on the benchmark,
// without holding the Simulator lock.
type traceEntry struct {
	once sync.Once
	tr   *trace.Trace
	err  error
}

// NewSimulator returns a simulator backend with the given trace length.
func NewSimulator(traceLen int) *Simulator {
	return &Simulator{
		TraceLen: traceLen,
		synth:    trace.ForBenchmark,
		traces:   make(map[string]*traceEntry),
	}
}

// traceFor returns the memoized trace for a benchmark, synthesizing it on
// first use. The mutex guards only the entry map; synthesis itself runs
// under a per-benchmark sync.Once, so first-touch synthesis of distinct
// benchmarks proceeds concurrently while racing callers of one benchmark
// still share a single synthesis. Synthesis outcomes — errors included —
// are deterministic in (bench, TraceLen), so memoizing a failure is
// equivalent to retrying it.
func (s *Simulator) traceFor(bench string) (*trace.Trace, error) {
	s.mu.Lock()
	e, ok := s.traces[bench]
	if !ok {
		e = &traceEntry{}
		s.traces[bench] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.tr, e.err = s.synth(bench, s.TraceLen) })
	return e.tr, e.err
}

// Evaluate implements Evaluator by detailed simulation.
func (s *Simulator) Evaluate(cfg arch.Config, bench string) (float64, float64, error) {
	tr, err := s.traceFor(bench)
	if err != nil {
		return 0, 0, err
	}
	res, err := sim.Run(cfg, tr)
	if err != nil {
		return 0, 0, fmt.Errorf("eval: simulating %s on %v: %w", bench, cfg, err)
	}
	return res.BIPS, power.Watts(res), nil
}

// Models is the regression backend: it evaluates the fitted per-benchmark
// performance and power models. Lookup resolves a benchmark to its two
// models (typically a closure over the Explorer's trained state), so the
// backend always sees the current models without copying them. When
// LookupCompiled is set and yields a pair, predictions run through the
// compiled fast path instead of the interpreted models.
type Models struct {
	Lookup func(bench string) (perf, pow *regression.Model, err error)

	// LookupCompiled, when non-nil, resolves a benchmark to its fused
	// compiled model pair. Returning (nil, nil) falls back to Lookup's
	// interpreted models for that benchmark.
	LookupCompiled func(bench string) (*CompiledPair, error)

	// last memoizes the most recent benchmark resolution: batches share a
	// benchmark (the common case for every sweep), so the lookups hoist
	// to once per batch instead of once per prediction.
	last atomic.Pointer[resolvedModels]

	// pool recycles per-goroutine scratch so a 262,500-point sweep does
	// not allocate per prediction.
	pool sync.Pool
}

// resolvedModels is one benchmark's evaluation state, resolved once and
// reused across the predictions of a batch.
type resolvedModels struct {
	bench     string
	pair      *CompiledPair     // non-nil on the compiled path
	perf, pow *regression.Model // interpreted fallback
}

// NewModels returns a regression-model backend over the lookup function.
func NewModels(lookup func(bench string) (perf, pow *regression.Model, err error)) *Models {
	m := &Models{Lookup: lookup}
	m.pool.New = func() any { return new(PairScratch) }
	return m
}

// Reset drops the memoized benchmark resolution. Call it after the
// models behind Lookup/LookupCompiled change (retraining, LoadModels) so
// stale resolutions cannot serve predictions.
func (m *Models) Reset() { m.last.Store(nil) }

// resolve returns the cached resolution for bench, refreshing it on a
// benchmark switch. Failed resolutions are not cached.
func (m *Models) resolve(bench string) (*resolvedModels, error) {
	if r := m.last.Load(); r != nil && r.bench == bench {
		return r, nil
	}
	r := &resolvedModels{bench: bench}
	if m.LookupCompiled != nil {
		pair, err := m.LookupCompiled(bench)
		if err != nil {
			return nil, err
		}
		r.pair = pair
	}
	if r.pair == nil {
		perf, pow, err := m.Lookup(bench)
		if err != nil {
			return nil, err
		}
		r.perf, r.pow = perf, pow
	}
	m.last.Store(r)
	return r, nil
}

// Evaluate implements Evaluator by model prediction: through the fused
// compiled pair when available, otherwise the interpreted models.
func (m *Models) Evaluate(cfg arch.Config, bench string) (float64, float64, error) {
	r, err := m.resolve(bench)
	if err != nil {
		return 0, 0, err
	}
	s := m.pool.Get().(*PairScratch)
	var bips, watts float64
	if r.pair != nil {
		bips, watts = r.pair.EvalConfig(cfg, s)
	} else {
		vals := arch.PredictorsInto(cfg, s.predictorVals())
		get := func(name string) float64 {
			idx := arch.PredictorIndex(name)
			if idx < 0 {
				panic("eval: unknown predictor " + name)
			}
			return vals[idx]
		}
		bips, watts = r.perf.Predict(get), r.pow.Predict(get)
	}
	m.pool.Put(s)
	return bips, watts, nil
}
