package eval

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/obs"
)

// Resilience observability instruments.
var (
	panicsRecoveredCtr = obs.DefaultRegistry.Counter("eval.panics_recovered")
	retriesCtr         = obs.DefaultRegistry.Counter("eval.retries")
)

// TaskError is the typed failure of one evaluation task: it carries the
// request that failed, how many attempts ran (1 + retries), and whether
// the final failure was a recovered panic. Engines wrap every backend
// failure in a TaskError, so batch callers can always recover the
// failing design point from the error alone; errors.Is/As reach the
// underlying cause through Unwrap.
type TaskError struct {
	Req      Request
	Attempts int
	Panicked bool
	Err      error
}

// Error implements error.
func (e *TaskError) Error() string {
	kind := "evaluating"
	if e.Panicked {
		kind = "panic evaluating"
	}
	return fmt.Sprintf("eval: %s %s on %v (attempt %d): %v",
		kind, e.Req.Bench, e.Req.Config, e.Attempts, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is and errors.As.
func (e *TaskError) Unwrap() error { return e.Err }

// PanicError is the error a recovered worker panic is converted into.
// It is transient: a panicking backend invocation is retried (bounded)
// like any other transient failure, because the panic may be specific
// to a momentary condition, and converting it to an error must not be
// strictly worse than an error return would have been.
type PanicError struct {
	Value any
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("recovered panic: %v", e.Value) }

// IsTransient marks recovered panics retryable.
func (e *PanicError) IsTransient() bool { return true }

// transienter is the classification probe: errors that know their own
// retryability (injected faults, recovered panics, future backend
// errors) implement it.
type transienter interface{ IsTransient() bool }

// retryable reports whether an evaluation error is worth retrying.
// Context errors never are — the caller is gone; errors that carry a
// transience classification decide for themselves; everything else is
// treated as permanent (a deterministic backend will fail the same way
// again).
func retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var t transienter
	if errors.As(err, &t) {
		return t.IsTransient()
	}
	return false
}
