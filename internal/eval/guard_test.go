package eval

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/fault"
	"repro/internal/power"
	"repro/internal/regression"
	"repro/internal/sim"
)

func TestGuardrailTickSemantics(t *testing.T) {
	g := NewGuardrail(4)
	var fired []int
	for i := 1; i <= 12; i++ {
		if g.Tick() {
			fired = append(fired, i)
		}
	}
	if len(fired) != 3 || fired[0] != 4 || fired[1] != 8 || fired[2] != 12 {
		t.Fatalf("interval-4 guard ticked on %v", fired)
	}

	// TickN fires when a batch crosses a boundary, however large.
	g = NewGuardrail(100)
	if g.TickN(99) {
		t.Fatal("TickN fired before the boundary")
	}
	if !g.TickN(1) {
		t.Fatal("TickN missed the boundary")
	}
	if !g.TickN(250) {
		t.Fatal("TickN missed a multi-boundary batch")
	}

	// Nil and disabled guards never check and never degrade.
	var nilG *Guardrail
	if nilG.Tick() || nilG.TickN(10) || nilG.TickCount(10) != 0 || nilG.Degraded() {
		t.Fatal("nil guard is not inert")
	}
	nilG.Record(true)
	if off := NewGuardrail(0); off.Tick() || off.TickN(1000) || off.TickCount(1000) != 0 {
		t.Fatal("interval-0 guard checks")
	}
}

// TestGuardrailTickCountExact pins the batch-kernel sampling contract:
// TickCount returns every boundary a batch crosses, so the per-point
// check rate is one-in-interval no matter how the caller slices its
// batches — where TickN would collapse a multi-interval batch into a
// single check.
func TestGuardrailTickCountExact(t *testing.T) {
	g := NewGuardrail(100)
	if got := g.TickCount(99); got != 0 {
		t.Fatalf("TickCount(99) = %d before the boundary", got)
	}
	if got := g.TickCount(1); got != 1 {
		t.Fatalf("TickCount(1) at the boundary = %d, want 1", got)
	}
	// A 1000-point batch at interval 100 crosses ten boundaries.
	if got := g.TickCount(1000); got != 10 {
		t.Fatalf("TickCount(1000) = %d, want 10", got)
	}
	if got := g.TickCount(0); got != 0 {
		t.Fatalf("TickCount(0) = %d, want 0", got)
	}
	// Across any slicing of the same range the total check count is
	// identical: 10,000 points at interval 100 → 100 checks.
	for _, chunk := range []int64{1, 7, 100, 512, 10_000} {
		g := NewGuardrail(100)
		var total, left int64 = 0, 10_000
		for left > 0 {
			n := chunk
			if n > left {
				n = left
			}
			total += g.TickCount(n)
			left -= n
		}
		if total != 100 {
			t.Fatalf("chunk %d: %d checks over 10k points at interval 100, want 100", chunk, total)
		}
	}
}

func TestGuardrailRecordTripsPermanently(t *testing.T) {
	g := NewGuardrail(1)
	g.Record(false)
	if g.Degraded() {
		t.Fatal("clean check degraded the guard")
	}
	g.Record(true)
	if !g.Degraded() {
		t.Fatal("divergence did not trip the guard")
	}
	g.Record(false)
	if !g.Degraded() {
		t.Fatal("guard untripped itself")
	}
	checks, div, degraded := g.Stats()
	if checks != 3 || div != 1 || !degraded {
		t.Fatalf("stats = %d/%d/%v, want 3/1/true", checks, div, degraded)
	}
}

// TestSimulatorGuardCatchesFlippedFastPath injects a single bit flip
// into the simulator's fast-path result and checks the guardrail
// catches it, returns the reference numbers, and degrades the backend
// onto the reference path for the rest of the run.
func TestSimulatorGuardCatchesFlippedFastPath(t *testing.T) {
	withPlan(t, &fault.Plan{Rules: []fault.Rule{
		{Site: "eval.sim.fast", Kind: fault.KindFlip, Every: 1, Count: 1},
	}})
	s := NewSimulator(2000)
	s.SetGuardInterval(1) // check every run; the flip must not escape
	cfg := arch.Baseline()

	tr, err := s.traceFor("gzip")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sim.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	wantB, wantW := ref.BIPS, power.Watts(ref)

	b, w, err := s.Evaluate(cfg, "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if b != wantB || w != wantW {
		t.Fatalf("guarded Evaluate returned corrupted (%v, %v), want reference (%v, %v)", b, w, wantB, wantW)
	}
	checks, div, degraded := s.GuardStats()
	if checks != 1 || div != 1 || !degraded {
		t.Fatalf("guard stats = %d/%d/%v after flip, want 1/1/true", checks, div, degraded)
	}

	// Degraded: later runs take the reference path (no further checks)
	// and stay correct.
	b, w, err = s.Evaluate(cfg, "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if b != wantB || w != wantW {
		t.Fatalf("degraded Evaluate = (%v, %v), want (%v, %v)", b, w, wantB, wantW)
	}
	if checks2, _, _ := s.GuardStats(); checks2 != checks {
		t.Fatalf("degraded backend kept cross-checking (%d checks)", checks2)
	}
}

// TestModelsGuardCatchesFlippedCompiledPath is the same contract for the
// compiled-model fast path: a flipped compiled prediction is caught,
// the interpreted numbers are returned, and the backend degrades onto
// the interpreted path.
func TestModelsGuardCatchesFlippedCompiledPath(t *testing.T) {
	withPlan(t, &fault.Plan{Rules: []fault.Rule{
		{Site: "eval.model.compiled", Kind: fault.KindFlip, Every: 1, Count: 1},
	}})
	perf, pow, space := fitTestModels(t)
	pair, err := CompilePair(perf, pow, space)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModels(func(bench string) (*regression.Model, *regression.Model, error) {
		return perf, pow, nil
	})
	m.LookupCompiled = func(bench string) (*CompiledPair, error) { return pair, nil }
	m.SetGuardInterval(1)

	cfg := space.Config(arch.Point{1, 1, 1, 1, 1, 1, 1})
	get := arch.PredictorGetter(cfg)
	wantB, wantW := perf.Predict(get), pow.Predict(get)

	b, w, err := m.Evaluate(cfg, "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if b != wantB || w != wantW {
		t.Fatalf("guarded Evaluate returned corrupted (%v, %v), want interpreted (%v, %v)", b, w, wantB, wantW)
	}
	checks, div, degraded := m.GuardStats()
	if checks != 1 || div != 1 || !degraded {
		t.Fatalf("guard stats = %d/%d/%v after flip, want 1/1/true", checks, div, degraded)
	}
	b, w, err = m.Evaluate(cfg, "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if b != wantB || w != wantW {
		t.Fatalf("degraded Evaluate = (%v, %v), want (%v, %v)", b, w, wantB, wantW)
	}
}
