package eval

import (
	"testing"

	"repro/internal/arch"
)

// TestSimulatorFastPathMatchesDisabled pins the backend-level contract:
// with and without DisableFastSim, Evaluate returns bit-identical
// (bips, watts) for the same requests.
func TestSimulatorFastPathMatchesDisabled(t *testing.T) {
	fast := NewSimulator(20000)
	slow := NewSimulator(20000)
	slow.DisableFastSim = true

	space := arch.ExplorationSpace()
	for _, bench := range []string{"gzip", "mcf"} {
		for _, p := range space.SampleUAR(4, 99) {
			cfg := space.Config(p)
			// Three times through the fast backend: the warm-miss, the
			// snapshot-restore (outcome-recording) and the outcome-replay
			// runs must all match the full-warmup path.
			for pass := 0; pass < 3; pass++ {
				gb, gw, err := fast.Evaluate(cfg, bench)
				if err != nil {
					t.Fatal(err)
				}
				wb, ww, err := slow.Evaluate(cfg, bench)
				if err != nil {
					t.Fatal(err)
				}
				if gb != wb || gw != ww {
					t.Fatalf("%s %v pass %d: fast (%v, %v), disabled (%v, %v)",
						bench, cfg, pass, gb, gw, wb, ww)
				}
			}
		}
	}
	hits, misses := fast.WarmStats()
	if hits == 0 || misses == 0 {
		t.Fatalf("fast backend warm stats hits=%d misses=%d, want both > 0", hits, misses)
	}
	if h, m := slow.WarmStats(); h != 0 || m != 0 {
		t.Fatalf("disabled backend warm stats %d/%d, want untouched", h, m)
	}
}

// TestEngineStatsExposeWarmCounters checks that an engine over the
// simulator backend surfaces its warm-state memo counters through Stats
// and differences them through StatsEpoch.
func TestEngineStatsExposeWarmCounters(t *testing.T) {
	s := NewSimulator(20000)
	e := NewEngine(s, Options{Workers: 1, Name: "sim"})
	cfg := arch.Baseline()

	// Same geometry, different widths: distinct requests (no engine cache
	// hits) that share one warm key, so the second is a warm hit.
	a, b := cfg, cfg
	b.Width = cfg.Width * 2
	for _, c := range []arch.Config{a, b} {
		if _, _, err := s.Evaluate(c, "gzip"); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.WarmHits != 1 || st.WarmMisses != 1 {
		t.Fatalf("engine stats warm = %d/%d, want 1/1", st.WarmHits, st.WarmMisses)
	}
	ep := e.StatsEpoch()
	if ep.WarmHits != 1 || ep.WarmMisses != 1 {
		t.Fatalf("first epoch warm = %d/%d, want 1/1", ep.WarmHits, ep.WarmMisses)
	}
	if _, _, err := s.Evaluate(b, "gzip"); err != nil {
		t.Fatal(err)
	}
	ep = e.StatsEpoch()
	if ep.WarmHits != 1 || ep.WarmMisses != 0 {
		t.Fatalf("second epoch warm = %d/%d, want 1/0", ep.WarmHits, ep.WarmMisses)
	}
}
