package eval

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/fault"
)

// withPlan arms a fault plan for the test and restores whatever plan the
// process had (the CI fault matrix arms one globally) on cleanup.
func withPlan(t *testing.T, p *fault.Plan) {
	t.Helper()
	prev := fault.Current()
	fault.Enable(p)
	t.Cleanup(func() { fault.Enable(prev) })
}

// transientTestErr is a backend error that classifies itself retryable.
type transientTestErr struct{}

func (transientTestErr) Error() string     { return "transient backend failure" }
func (transientTestErr) IsTransient() bool { return true }

// panicEvaluator panics on its first panicFirst calls, then succeeds
// with a fixed deterministic result.
type panicEvaluator struct {
	calls      atomic.Int64
	panicFirst int64
}

func (p *panicEvaluator) Evaluate(cfg arch.Config, bench string) (float64, float64, error) {
	if p.calls.Add(1) <= p.panicFirst {
		panic("backend exploded")
	}
	return 1.5, 42, nil
}

func TestPanicConvertedToTypedTaskError(t *testing.T) {
	if fault.Active() {
		t.Skip("exact attempt counts do not hold under an ambient fault plan")
	}
	ev := &panicEvaluator{panicFirst: 1 << 30} // always panics
	e := NewEngine(ev, Options{Workers: 2, NoCache: true, Retries: -1})

	_, err := e.Evaluate(context.Background(), Request{Config: arch.Baseline(), Bench: "gzip"})
	if err == nil {
		t.Fatal("panicking backend returned no error")
	}
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err = %T %v, want *TaskError", err, err)
	}
	if !te.Panicked || te.Attempts != 1 || te.Req.Bench != "gzip" {
		t.Fatalf("TaskError = %+v", te)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("cause = %v, want *PanicError", te.Err)
	}
	if st := e.Stats(); st.PanicsRecovered != 1 {
		t.Fatalf("PanicsRecovered = %d, want 1", st.PanicsRecovered)
	}
}

func TestPanicRetriedThenSucceeds(t *testing.T) {
	if fault.Active() {
		t.Skip("exact attempt counts do not hold under an ambient fault plan")
	}
	ev := &panicEvaluator{panicFirst: 1}
	e := NewEngine(ev, Options{Workers: 2, NoCache: true, RetryBackoff: time.Microsecond})

	res, err := e.Evaluate(context.Background(), Request{Config: arch.Baseline(), Bench: "gzip"})
	if err != nil {
		t.Fatalf("retry did not absorb the panic: %v", err)
	}
	if res.BIPS != 1.5 || res.Watts != 42 {
		t.Fatalf("result = %+v", res)
	}
	st := e.Stats()
	if st.PanicsRecovered != 1 || st.Retries != 1 {
		t.Fatalf("PanicsRecovered=%d Retries=%d, want 1/1", st.PanicsRecovered, st.Retries)
	}
}

func TestTransientErrorRetried(t *testing.T) {
	if fault.Active() {
		t.Skip("exact attempt counts do not hold under an ambient fault plan")
	}
	var failures atomic.Int64
	failures.Store(1)
	ev := &countingEvaluator{failFor: func(Request) error {
		if failures.Add(-1) >= 0 {
			return transientTestErr{}
		}
		return nil
	}}
	e := NewEngine(ev, Options{Workers: 2, NoCache: true, RetryBackoff: time.Microsecond})

	if _, err := e.Evaluate(context.Background(), Request{Config: arch.Baseline(), Bench: "gzip"}); err != nil {
		t.Fatalf("retry did not absorb the transient error: %v", err)
	}
	if got := ev.calls.Load(); got != 2 {
		t.Fatalf("backend ran %d times, want 2", got)
	}
	if st := e.Stats(); st.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", st.Retries)
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	if fault.Active() {
		t.Skip("exact attempt counts do not hold under an ambient fault plan")
	}
	boom := errors.New("permanent")
	ev := &countingEvaluator{failFor: func(Request) error { return boom }}
	e := NewEngine(ev, Options{Workers: 2, NoCache: true})

	_, err := e.Evaluate(context.Background(), Request{Config: arch.Baseline(), Bench: "gzip"})
	var te *TaskError
	if !errors.As(err, &te) || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want TaskError wrapping %v", err, boom)
	}
	if te.Attempts != 1 || te.Panicked {
		t.Fatalf("TaskError = %+v, want 1 non-panic attempt", te)
	}
	if got := ev.calls.Load(); got != 1 {
		t.Fatalf("permanent failure ran the backend %d times, want 1", got)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	if fault.Active() {
		t.Skip("exact attempt counts do not hold under an ambient fault plan")
	}
	ev := &countingEvaluator{failFor: func(Request) error { return transientTestErr{} }}
	e := NewEngine(ev, Options{Workers: 2, NoCache: true, Retries: 1, RetryBackoff: time.Microsecond})

	_, err := e.Evaluate(context.Background(), Request{Config: arch.Baseline(), Bench: "gzip"})
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TaskError", err)
	}
	if te.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2 (1 + Retries)", te.Attempts)
	}
	var tte transientTestErr
	if !errors.As(err, &tte) {
		t.Fatalf("cause lost: %v", err)
	}
}

func TestCacheNotPoisonedByPanic(t *testing.T) {
	if fault.Active() {
		t.Skip("exact attempt counts do not hold under an ambient fault plan")
	}
	ev := &panicEvaluator{panicFirst: 1}
	e := NewEngine(ev, Options{Workers: 2, Retries: -1})
	req := Request{Config: arch.Baseline(), Bench: "gzip"}

	if _, err := e.Evaluate(context.Background(), req); err == nil {
		t.Fatal("first (panicking) evaluation should fail with retry disabled")
	}
	res, err := e.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatalf("evaluation after recovered panic: %v", err)
	}
	if res.BIPS != 1.5 {
		t.Fatalf("result = %+v", res)
	}
	// Third call must be a cache hit of the good value.
	if _, err := e.Evaluate(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if got := ev.calls.Load(); got != 2 {
		t.Fatalf("backend ran %d times, want 2 (panic not cached, success cached)", got)
	}
}

func TestInjectedFaultPlanAbsorbedDeterministically(t *testing.T) {
	run := func() ([]Result, EngineStats, error) {
		// Fresh Enable resets rule counters so both runs see the identical
		// fault sequence.
		fault.Enable(&fault.Plan{Seed: 7, Rules: []fault.Rule{
			{Site: "eval.invoke", Kind: fault.KindError, Every: 5},
			{Site: "eval.invoke", Kind: fault.KindPanic, Every: 17},
			{Site: "eval.invoke", Kind: fault.KindDelay, Every: 9, Delay: 100 * time.Microsecond},
		}})
		// Retries generous relative to the fault density: with every=5
		// errors, back-to-back attempts have a real chance of re-hitting a
		// firing visit, and the test is about absorption, not budgets.
		e := NewEngine(&countingEvaluator{}, Options{Workers: 4, NoCache: true, Retries: 8, RetryBackoff: time.Microsecond})
		res, err := e.EvaluateBatch(context.Background(), testRequests(200))
		return res, e.Stats(), err
	}
	prev := fault.Current()
	t.Cleanup(func() { fault.Enable(prev) })

	a, stA, errA := run()
	b, _, errB := run()
	if errA != nil || errB != nil {
		t.Fatalf("batches under injection failed: %v / %v", errA, errB)
	}
	if len(a) != len(b) {
		t.Fatalf("result lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs across identical fault plans: %+v vs %+v", i, a[i], b[i])
		}
	}
	if stA.Retries == 0 || stA.PanicsRecovered == 0 {
		t.Fatalf("injection did not exercise recovery: %+v", stA)
	}
}

func TestFatalInjectionKillsRunWithTypedError(t *testing.T) {
	withPlan(t, &fault.Plan{Rules: []fault.Rule{
		{Site: "eval.invoke", Kind: fault.KindFatal, After: 10, Every: 1, Count: 1},
	}})
	e := NewEngine(&countingEvaluator{}, Options{Workers: 1, NoCache: true, RetryBackoff: time.Microsecond})
	_, err := e.EvaluateBatch(context.Background(), testRequests(50))
	var inj *fault.Injected
	if !errors.As(err, &inj) {
		t.Fatalf("err = %v, want wrapped *fault.Injected", err)
	}
	if inj.Transient {
		t.Fatal("fatal injection classified transient")
	}
	var te *TaskError
	if !errors.As(err, &te) || te.Attempts != 1 {
		t.Fatalf("fatal injection was retried: %v", err)
	}
}

func TestBatchTimeoutEnforced(t *testing.T) {
	ev := &countingEvaluator{delay: 10 * time.Millisecond}
	e := NewEngine(ev, Options{Workers: 2, NoCache: true, BatchTimeout: 25 * time.Millisecond})
	start := time.Now()
	_, err := e.EvaluateBatch(context.Background(), testRequests(500))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline enforced only after %v", elapsed)
	}
	// The deadline is per batch, not per engine: a later cheap batch on
	// the same engine succeeds.
	ev.delay = 0
	if _, err := e.EvaluateBatch(context.Background(), testRequests(4)); err != nil {
		t.Fatalf("batch after an expired batch: %v", err)
	}
}

func TestSweepTimeoutEnforced(t *testing.T) {
	e := NewEngine(&countingEvaluator{}, Options{Workers: 2, BatchTimeout: 20 * time.Millisecond})
	err := e.Sweep(context.Background(), 1_000_000, func(lo, hi int) error {
		time.Sleep(5 * time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestCancelledBatchReturnsNoPartialResults(t *testing.T) {
	release := make(chan struct{})
	ev := &countingEvaluator{block: release}
	e := NewEngine(ev, Options{Workers: 2, NoCache: true})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var res []Result
	var err error
	go func() {
		defer close(done)
		res, err = e.EvaluateBatch(ctx, testRequests(50))
	}()
	for e.Stats().InFlight < 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	<-done

	// The partial-results contract: a failed or cancelled batch returns
	// nil results, never a half-filled slice the caller could mistake for
	// a complete one.
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled batch returned %d partial results, want nil", len(res))
	}
}

// TestRetryDelayJitterDeterministicAndDecorrelated pins the backoff
// jitter's contract: bounded by [0.5, 1.5) of the doubled base,
// bit-reproducible for the same (request, attempt), and different
// across distinct requests so co-scheduled workers that share a
// transient fault do not retry in lockstep.
func TestRetryDelayJitterDeterministicAndDecorrelated(t *testing.T) {
	e := NewEngine(&panicEvaluator{}, Options{Workers: 1, RetryBackoff: time.Millisecond})
	reqA := Request{Config: arch.Baseline(), Bench: "gzip"}
	cfgB := arch.Baseline()
	cfgB.Width = cfgB.Width * 2
	reqB := Request{Config: cfgB, Bench: "gzip"}

	for attempt := 1; attempt <= 4; attempt++ {
		base := time.Millisecond << uint(attempt-1)
		d := e.retryDelay(reqA, attempt)
		if d < base/2 || d >= base+base/2 {
			t.Fatalf("attempt %d delay %v outside [%v, %v)", attempt, d, base/2, base+base/2)
		}
		if again := e.retryDelay(reqA, attempt); again != d {
			t.Fatalf("attempt %d delay not deterministic: %v then %v", attempt, d, again)
		}
	}
	if e.retryDelay(reqA, 1) == e.retryDelay(reqB, 1) {
		t.Fatal("distinct requests drew identical jitter (lockstep retries)")
	}
	if e.retryDelay(reqA, 1)*2 == e.retryDelay(reqA, 2) {
		t.Fatal("attempts are perfectly correlated; jitter must redraw per attempt")
	}
}
