package eval

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/obs"
)

// withObsTracing enables tracing on a fresh tracer for one test and
// restores the previous process-wide state afterwards. Tests using it
// must not run in parallel.
func withObsTracing(t *testing.T, capacity int) *obs.Tracer {
	t.Helper()
	prev := obs.DefaultTracer
	prevEnabled := obs.Enabled()
	obs.DefaultTracer = obs.NewTracer(capacity)
	obs.Enable(true)
	t.Cleanup(func() {
		obs.DefaultTracer = prev
		obs.Enable(prevEnabled)
	})
	return obs.DefaultTracer
}

// uniqueRequests builds n requests with pairwise-distinct cache keys.
func uniqueRequests(n int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Config: testConfig(i), Bench: fmt.Sprintf("u%d", i)}
	}
	return reqs
}

// TestStatsEpoch verifies delta-since-epoch semantics: each call reports
// only the work since the previous call, while Stats() keeps lifetime
// totals, so sequential phases in one process don't double-count.
func TestStatsEpoch(t *testing.T) {
	e := NewEngine(&countingEvaluator{}, Options{Workers: 4})
	reqs := uniqueRequests(32)

	if _, err := e.EvaluateBatch(context.Background(), reqs); err != nil {
		t.Fatal(err)
	}
	first := e.StatsEpoch()
	if first.Evaluations != 32 || first.CacheMisses != 32 || first.CacheHits != 0 {
		t.Fatalf("first epoch = %+v, want 32 evaluations/misses", first)
	}
	if first.Workers != 4 {
		t.Fatalf("epoch workers = %d, want the gauge passed through", first.Workers)
	}

	// Second pass over the same keys is all cache hits; the epoch delta
	// must contain only that.
	if _, err := e.EvaluateBatch(context.Background(), reqs); err != nil {
		t.Fatal(err)
	}
	second := e.StatsEpoch()
	if second.Evaluations != 0 || second.CacheMisses != 0 || second.CacheHits != 32 {
		t.Fatalf("second epoch = %+v, want 32 hits only", second)
	}

	// An immediate third epoch has seen no traffic at all.
	third := e.StatsEpoch()
	if third.Evaluations != 0 || third.CacheHits != 0 || third.CacheMisses != 0 || third.SweptPoints != 0 {
		t.Fatalf("idle epoch = %+v, want zero deltas", third)
	}

	// Lifetime totals are unaffected by epoch resets.
	st := e.Stats()
	if st.Evaluations != 32 || st.CacheHits != 32 || st.CacheMisses != 32 {
		t.Fatalf("lifetime stats = %+v, want 32/32/32", st)
	}
}

// TestSpanNestingConcurrentBatch runs a traced EvaluateBatch across many
// workers and checks every per-evaluation span is parented to the batch
// span and nested within its interval. Under -race this also exercises
// the lock-free span ring from the engine's worker pool.
func TestSpanNestingConcurrentBatch(t *testing.T) {
	tr := withObsTracing(t, 256)
	e := NewEngine(&countingEvaluator{}, Options{Workers: 8, NoCache: true, Name: "spantest"})
	const n = 64
	if _, err := e.EvaluateBatch(context.Background(), uniqueRequests(n)); err != nil {
		t.Fatal(err)
	}

	spans := tr.Snapshot()
	var batch *obs.SpanRecord
	invokes := 0
	for i := range spans {
		switch spans[i].Name {
		case "eval.spantest.batch":
			if batch != nil {
				t.Fatal("more than one batch span recorded")
			}
			batch = &spans[i]
		case "eval.spantest.invoke":
			invokes++
		}
	}
	if batch == nil {
		t.Fatal("no batch span recorded")
	}
	if invokes != n {
		t.Fatalf("recorded %d invoke spans, want %d", invokes, n)
	}
	batchEnd := batch.StartNS + batch.DurNS
	for _, s := range spans {
		if s.Name != "eval.spantest.invoke" {
			continue
		}
		if s.Parent != batch.ID {
			t.Fatalf("invoke span parent = %d, want batch span %d", s.Parent, batch.ID)
		}
		if s.StartNS < batch.StartNS {
			t.Fatal("invoke span started before its batch span")
		}
		if s.StartNS+s.DurNS > batchEnd {
			t.Fatal("invoke span ended after its batch span")
		}
	}

	// The per-invoke latency histogram saw every evaluation.
	if got := obs.DefaultRegistry.Histogram("eval.spantest.invoke").Snapshot().Count; got < n {
		t.Fatalf("invoke histogram count = %d, want >= %d", got, n)
	}
}

// TestSweepTracedMatchesUntraced checks that enabling observability does
// not change Sweep behaviour: same tiles covered, same swept-point count,
// plus tile spans nested under the sweep span.
func TestSweepTracedMatchesUntraced(t *testing.T) {
	tr := withObsTracing(t, 256)
	e := NewEngine(&countingEvaluator{}, Options{Workers: 4, Name: "sweeptest"})
	const n = 1000
	covered := make([]int32, n)
	err := e.Sweep(context.Background(), n, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			covered[i]++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
	if got := e.Stats().SweptPoints; got != n {
		t.Fatalf("swept points = %d, want %d", got, n)
	}

	spans := tr.Snapshot()
	var sweep *obs.SpanRecord
	tiles := 0
	for i := range spans {
		switch spans[i].Name {
		case "eval.sweeptest.sweep":
			sweep = &spans[i]
		case "eval.sweeptest.tile":
			tiles++
		}
	}
	if sweep == nil {
		t.Fatal("no sweep span recorded")
	}
	if tiles == 0 {
		t.Fatal("no tile spans recorded")
	}
	for _, s := range spans {
		if s.Name == "eval.sweeptest.tile" && s.Parent != sweep.ID {
			t.Fatalf("tile span parent = %d, want sweep span %d", s.Parent, sweep.ID)
		}
	}
}

// TestEngineStatsSub pins Sub's delta semantics: counters are
// differenced, gauges (Degraded, InFlight, Workers) carried from the
// newer snapshot untouched. StatsEpoch is built on Sub.
func TestEngineStatsSub(t *testing.T) {
	base := EngineStats{
		Evaluations: 10, CacheHits: 5, CacheMisses: 5, SweptPoints: 100,
		BatchCalls: 2, WarmHits: 3, WarmMisses: 1, PanicsRecovered: 1,
		Retries: 2, GuardChecks: 4, GuardDivergences: 1,
		Degraded: true, InFlight: 9, Workers: 2,
	}
	cur := EngineStats{
		Evaluations: 25, CacheHits: 11, CacheMisses: 9, SweptPoints: 350,
		BatchCalls: 5, WarmHits: 7, WarmMisses: 2, PanicsRecovered: 1,
		Retries: 6, GuardChecks: 9, GuardDivergences: 1,
		Degraded: false, InFlight: 3, Workers: 4,
	}
	want := EngineStats{
		Evaluations: 15, CacheHits: 6, CacheMisses: 4, SweptPoints: 250,
		BatchCalls: 3, WarmHits: 4, WarmMisses: 1, PanicsRecovered: 0,
		Retries: 4, GuardChecks: 5, GuardDivergences: 0,
		Degraded: false, InFlight: 3, Workers: 4,
	}
	if got := cur.Sub(base); got != want {
		t.Fatalf("Sub = %+v, want %+v", got, want)
	}
}
