package eval

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Guardrail observability instruments, shared by every guarded backend.
var (
	guardChecksCtr      = obs.DefaultRegistry.Counter("eval.guard.checks")
	guardDivergencesCtr = obs.DefaultRegistry.Counter("eval.guard.divergences")
)

// Guardrail is the runtime cross-check that keeps fast paths honest: a
// backend with a fast path (compiled predictors, the simulator's
// warm-state memo) samples roughly one in Interval fast results and
// recomputes it on its reference path. The paths are bit-identical by
// construction, so any difference is silent corruption — a bug or a
// flipped bit — and the guardrail records the divergence and degrades:
// Degraded flips permanently to true and the owner routes every later
// evaluation down the safe reference path instead of returning wrong
// numbers.
//
// Sampling is counter-based (every Interval-th fast evaluation), so
// single-threaded runs check a deterministic subsequence. A nil
// *Guardrail is valid and never checks.
type Guardrail struct {
	interval    int64
	n           atomic.Int64
	checks      atomic.Int64
	divergences atomic.Int64
	degraded    atomic.Bool
}

// NewGuardrail returns a guardrail checking every interval-th fast
// evaluation; interval <= 0 yields a guardrail that never checks.
func NewGuardrail(interval int64) *Guardrail {
	return &Guardrail{interval: interval}
}

// Tick counts one fast evaluation and reports whether it should be
// cross-checked.
func (g *Guardrail) Tick() bool {
	if g == nil || g.interval <= 0 {
		return false
	}
	return g.n.Add(1)%g.interval == 0
}

// TickN counts n fast evaluations at once — the sweep kernels tick once
// per tile, not per point, to keep the hot loop free of shared-counter
// traffic — and reports whether the batch crossed a check boundary, in
// which case the caller cross-checks one representative point of the
// batch.
func (g *Guardrail) TickN(n int64) bool {
	return g.TickCount(n) > 0
}

// TickCount counts n fast evaluations at once and returns how many
// check boundaries the batch crossed — the per-point sampling rate for
// batch kernels. Where TickN collapses a batch larger than the interval
// into a single check (a tile of 32k points at interval 1024 would be
// sampled once instead of ~32 times, silently thinning guard coverage),
// TickCount preserves the configured one-in-Interval rate exactly: the
// caller cross-checks that many points of the batch, however the batch
// is sized.
func (g *Guardrail) TickCount(n int64) int64 {
	if g == nil || g.interval <= 0 || n <= 0 {
		return 0
	}
	after := g.n.Add(n)
	return after/g.interval - (after-n)/g.interval
}

// Record reports the outcome of one cross-check. A divergence trips the
// guardrail: Degraded becomes true and stays true for the rest of the
// run.
func (g *Guardrail) Record(diverged bool) {
	if g == nil {
		return
	}
	g.checks.Add(1)
	guardChecksCtr.Add(1)
	if diverged {
		g.divergences.Add(1)
		guardDivergencesCtr.Add(1)
		g.degraded.Store(true)
	}
}

// Degraded reports whether a divergence has been observed; owners route
// evaluations down the reference path while true.
func (g *Guardrail) Degraded() bool { return g != nil && g.degraded.Load() }

// Stats returns the guardrail's lifetime counters.
func (g *Guardrail) Stats() (checks, divergences int64, degraded bool) {
	if g == nil {
		return 0, 0, false
	}
	return g.checks.Load(), g.divergences.Load(), g.degraded.Load()
}
