package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("second"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Fatalf("content = %q, want %q", got, "second")
	}
	leftovers, err := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("temp files left behind: %v", leftovers)
	}
}

func TestWriteToEmitErrorLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile(path, []byte("intact"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("emit failed")
	err := WriteTo(path, 0o644, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "intact" {
		t.Fatalf("failed write corrupted target: %q", got)
	}
	leftovers, _ := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if len(leftovers) != 0 {
		t.Fatalf("temp files left behind after failure: %v", leftovers)
	}
}

func TestWriteFileRelativePathInCwd(t *testing.T) {
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)
	if err := WriteFile("bare.txt", []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat("bare.txt"); err != nil {
		t.Fatal(err)
	}
}

func TestWriteFileMissingDirFails(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("write into missing directory succeeded")
	}
	if !strings.Contains(err.Error(), "no such file") && !os.IsNotExist(err) {
		t.Logf("error (acceptable, just must be non-nil): %v", err)
	}
}

// TestDirSyncErrorPaths drives the directory-fsync that follows the
// rename through its outcomes: success, the "filesystem cannot fsync
// directories" errnos (tolerated — the rename is already atomic for
// readers), and a real I/O failure (reported, because crash durability
// of the new directory entry was the point).
func TestDirSyncErrorPaths(t *testing.T) {
	orig := syncFile
	t.Cleanup(func() { syncFile = orig })

	cases := []struct {
		name    string
		syncErr error
		wantErr bool
	}{
		{name: "ok", syncErr: nil, wantErr: false},
		{name: "einval-tolerated", syncErr: syscall.EINVAL, wantErr: false},
		{name: "enotsup-tolerated", syncErr: syscall.ENOTSUP, wantErr: false},
		{name: "enotty-tolerated", syncErr: syscall.ENOTTY, wantErr: false},
		{name: "eio-reported", syncErr: syscall.EIO, wantErr: true},
		{name: "wrapped-eio-reported", syncErr: &os.PathError{Op: "fsync", Path: ".", Err: syscall.EIO}, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "out.json")
			syncFile = func(f *os.File) error { return tc.syncErr }
			err := WriteFile(path, []byte("payload"), 0o644)
			if tc.wantErr {
				if err == nil {
					t.Fatal("dir fsync failure was swallowed")
				}
				if !errors.Is(err, syscall.EIO) {
					t.Fatalf("error %v does not wrap the fsync errno", err)
				}
			} else if err != nil {
				t.Fatalf("WriteFile: %v", err)
			}
			// In every case the rename happened first, so the content is
			// published (possibly non-durably) regardless of the verdict.
			got, rerr := os.ReadFile(path)
			if rerr != nil || string(got) != "payload" {
				t.Fatalf("published content = %q, %v", got, rerr)
			}
		})
	}
}
