package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("second"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Fatalf("content = %q, want %q", got, "second")
	}
	leftovers, err := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("temp files left behind: %v", leftovers)
	}
}

func TestWriteToEmitErrorLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile(path, []byte("intact"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("emit failed")
	err := WriteTo(path, 0o644, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "intact" {
		t.Fatalf("failed write corrupted target: %q", got)
	}
	leftovers, _ := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if len(leftovers) != 0 {
		t.Fatalf("temp files left behind after failure: %v", leftovers)
	}
}

func TestWriteFileRelativePathInCwd(t *testing.T) {
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)
	if err := WriteFile("bare.txt", []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat("bare.txt"); err != nil {
		t.Fatal(err)
	}
}

func TestWriteFileMissingDirFails(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("write into missing directory succeeded")
	}
	if !strings.Contains(err.Error(), "no such file") && !os.IsNotExist(err) {
		t.Logf("error (acceptable, just must be non-nil): %v", err)
	}
}
