// Package atomicio writes files atomically: content lands in a
// temporary file in the destination directory, is fsynced, and is then
// renamed over the target, so readers never observe a truncated or
// half-written file — a crash mid-write leaves either the old content or
// none. Run manifests, benchmark reports and checkpoints all publish
// through this package; anything a later process resumes from or a
// dashboard ingests must never be torn.
package atomicio

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// WriteFile atomically replaces path with data. The temporary file is
// created in path's directory (renames across filesystems are not
// atomic), fsynced before the rename so the content is durable first,
// and removed on any failure. The directory itself is fsynced after the
// rename so the new directory entry is durable too: a checkpoint whose
// name vanishes on power loss defeats resume just as surely as torn
// content would.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	return WriteTo(path, perm, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// WriteTo atomically replaces path with whatever emit writes. It is
// WriteFile for callers that stream (JSON encoders, table writers)
// instead of materializing the content first. If emit returns an error,
// the target is untouched and the temporary file is removed.
func WriteTo(path string, perm os.FileMode, emit func(io.Writer) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	// Any failure from here on removes the temp file; the target is only
	// ever touched by the final rename.
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := emit(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail(err)
	}
	// Sync before rename: the rename must never publish a name whose
	// content is still only in the page cache.
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	// The rename published the name to readers; now make the directory
	// entry durable. Unlike the content fsync above, failure here leaves
	// a valid file behind, but callers that promise crash-durable output
	// (checkpoints, beacons) must hear about it rather than find out at
	// the next power loss.
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("atomicio: fsync %s after renaming %s: %w", dir, base, err)
	}
	return nil
}

// syncFile is the fsync behind syncDir; tests substitute failures to
// exercise the error paths without a faulty filesystem.
var syncFile = func(f *os.File) error { return f.Sync() }

// syncDir fsyncs a directory so a just-renamed entry survives power
// loss. Filesystems that cannot fsync directories (EINVAL/ENOTSUP —
// the rename is still atomic for readers there) are tolerated; any
// other failure is real and reported.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		// The directory demonstrably exists (the rename just succeeded
		// in it); an unopenable directory is a platform that does not
		// support opening directories at all, not a durability failure.
		return nil
	}
	defer d.Close()
	if err := syncFile(d); err != nil && !syncUnsupported(err) {
		return err
	}
	return nil
}

// syncUnsupported reports whether an fsync error means "this filesystem
// cannot fsync directories" rather than "the fsync failed".
func syncUnsupported(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) ||
		errors.Is(err, syscall.ENOTTY) || errors.Is(err, syscall.EBADF)
}
