// Package atomicio writes files atomically: content lands in a
// temporary file in the destination directory, is fsynced, and is then
// renamed over the target, so readers never observe a truncated or
// half-written file — a crash mid-write leaves either the old content or
// none. Run manifests, benchmark reports and checkpoints all publish
// through this package; anything a later process resumes from or a
// dashboard ingests must never be torn.
package atomicio

import (
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data. The temporary file is
// created in path's directory (renames across filesystems are not
// atomic), fsynced before the rename so the content is durable first,
// and removed on any failure. The directory itself is fsynced after the
// rename on a best-effort basis so the new directory entry is durable
// too.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	return WriteTo(path, perm, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// WriteTo atomically replaces path with whatever emit writes. It is
// WriteFile for callers that stream (JSON encoders, table writers)
// instead of materializing the content first. If emit returns an error,
// the target is untouched and the temporary file is removed.
func WriteTo(path string, perm os.FileMode, emit func(io.Writer) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	// Any failure from here on removes the temp file; the target is only
	// ever touched by the final rename.
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := emit(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail(err)
	}
	// Sync before rename: the rename must never publish a name whose
	// content is still only in the page cache.
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	// Durability of the directory entry is best-effort: some platforms
	// refuse to fsync directories, and the rename itself is already
	// atomic with respect to readers.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
