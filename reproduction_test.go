// End-to-end reproduction tests: each test asserts one of the paper's
// headline claims against a freshly trained (reduced-budget) pipeline.
// They are the executable form of EXPERIMENTS.md. Run with -short to skip
// the expensive ones.
package repro

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/core/depthstudy"
	"repro/internal/core/heterostudy"
	"repro/internal/core/paretostudy"
	"repro/internal/metrics"
)

// The test fixture trains once with a smaller budget than the bench
// harness so `go test .` stays in tens of seconds.
var (
	claimOnce sync.Once
	claim     struct {
		e   *core.Explorer
		err error
	}
)

func claimExplorer(t *testing.T) *core.Explorer {
	t.Helper()
	if testing.Short() {
		t.Skip("reproduction claims skipped in -short mode")
	}
	claimOnce.Do(func() {
		opts := core.DefaultOptions()
		opts.TrainSamples = 250
		opts.ValidationSamples = 50
		opts.TraceLen = 30000
		e, err := core.New(opts)
		if err != nil {
			claim.err = err
			return
		}
		if err := e.Train(); err != nil {
			claim.err = err
			return
		}
		claim.e = e
	})
	if claim.err != nil {
		t.Fatal(claim.err)
	}
	return claim.e
}

// Claim (Section 3.4): regression models trained on ~1000 random samples
// predict performance and power of unseen designs with single-digit
// median error.
func TestClaimValidationAccuracy(t *testing.T) {
	e := claimExplorer(t)
	rep, err := e.Validate(0)
	if err != nil {
		t.Fatal(err)
	}
	perf, pow := rep.OverallMedians()
	if perf > 0.10 {
		t.Errorf("median performance error %.1f%% exceeds 10%% (paper: 7.2%%)", perf*100)
	}
	if pow > 0.10 {
		t.Errorf("median power error %.1f%% exceeds 10%% (paper: 5.4%%)", pow*100)
	}
}

// Claim (Section 4.3): predictions for pareto optima are no less accurate
// than those for the broader design space.
func TestClaimParetoOptimaAccuracy(t *testing.T) {
	e := claimExplorer(t)
	rep, err := e.Validate(0)
	if err != nil {
		t.Fatal(err)
	}
	randPerf, randPow := rep.OverallMedians()

	results, err := paretostudy.RunSuite(e, paretostudy.Options{
		DelayTargets:     25,
		SimulateFrontier: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	frontPerf, frontPow, ok := paretostudy.ErrorSummary(results)
	if !ok {
		t.Fatal("no frontier errors")
	}
	// "No less accurate" with headroom for sampling noise: within 3x and
	// still single-digit-ish.
	if frontPerf > 3*randPerf+0.05 {
		t.Errorf("frontier perf error %.1f%% out of line with random %.1f%%",
			frontPerf*100, randPerf*100)
	}
	if frontPow > 3*randPow+0.05 {
		t.Errorf("frontier power error %.1f%% out of line with random %.1f%%",
			frontPow*100, randPow*100)
	}
}

// Claim (Table 2): per-benchmark optima are architecturally diverse — the
// memory-bound benchmark picks a larger L2 than the compute-bound one,
// and at least one benchmark goes wide while another stays narrow.
func TestClaimOptimaDiversity(t *testing.T) {
	e := claimExplorer(t)
	optima, err := heterostudy.FindOptima(e)
	if err != nil {
		t.Fatal(err)
	}
	if optima["mcf"].L2KB <= optima["gzip"].L2KB {
		t.Errorf("mcf L2 (%d KB) should exceed gzip's (%d KB)",
			optima["mcf"].L2KB, optima["gzip"].L2KB)
	}
	sawWide, sawNarrow := false, false
	for _, cfg := range optima {
		if cfg.Width == 8 {
			sawWide = true
		}
		if cfg.Width == 2 {
			sawNarrow = true
		}
	}
	if !sawWide || !sawNarrow {
		t.Errorf("optima lack width diversity (wide=%v narrow=%v)", sawWide, sawNarrow)
	}
	if optima["mcf"].Width != 2 {
		t.Errorf("mcf optimum is %d-wide; the paper's is narrow", optima["mcf"].Width)
	}
}

// Claim (Section 5, Figures 5-6): the bips^3/w-optimal pipeline depth is
// interior with a plateau, the models identify the simulator's optimal
// depth to within 3 FO4, and at every depth a sizable fraction of the
// unconstrained space beats the constrained baseline.
func TestClaimDepthStudy(t *testing.T) {
	e := claimExplorer(t)
	results, err := depthstudy.RunSuite(e, depthstudy.Options{SimulateValidation: true})
	if err != nil {
		t.Fatal(err)
	}
	avg, err := depthstudy.Average(results)
	if err != nil {
		t.Fatal(err)
	}
	if avg.BestOriginalDepth <= 12 || avg.BestOriginalDepth >= 30 {
		t.Errorf("optimal depth %d FO4 is at the boundary (paper: 18)", avg.BestOriginalDepth)
	}
	simBest, simVal := 0, -1.0
	for i, v := range avg.OriginalSimRel {
		if v > simVal {
			simVal, simBest = v, avg.Depths[i]
		}
	}
	if d := avg.BestOriginalDepth - simBest; d < -3 || d > 3 {
		t.Errorf("model optimum %d vs simulated %d beyond 3 FO4", avg.BestOriginalDepth, simBest)
	}
	for i, frac := range avg.FracBeatsBaseline {
		if frac < 0.02 {
			t.Errorf("at %d FO4 only %.1f%% of designs beat the baseline", avg.Depths[i], frac*100)
		}
	}
	// Plateau: the second-best depth is within 5% of the best.
	best, second := 0.0, 0.0
	for _, v := range avg.OriginalRel {
		if v > best {
			second = best
			best = v
		} else if v > second {
			second = v
		}
	}
	if second < 0.95*best {
		t.Errorf("no plateau: best %.3f vs second %.3f", best, second)
	}
}

// Claim (Section 6, Figure 9): heterogeneity gains grow with cluster
// count with diminishing returns — K=4 captures most of the K=max bound —
// and the models over-estimate gains relative to simulation while
// preserving the trend.
func TestClaimHeterogeneity(t *testing.T) {
	e := claimExplorer(t)
	res, err := heterostudy.Run(e, nil, heterostudy.Options{
		SimulateValidation: true,
		Seed:               7,
	})
	if err != nil {
		t.Fatal(err)
	}
	k1 := res.Levels[0].AvgModelGain
	k4 := res.Levels[3].AvgModelGain
	kmax := res.Levels[len(res.Levels)-1].AvgModelGain
	if kmax <= 1.05 {
		t.Errorf("heterogeneity bound %.2fx shows no benefit", kmax)
	}
	if k4 < 0.85*kmax {
		t.Errorf("K=4 gain %.2fx captures only %.0f%% of the K=max bound %.2fx (paper: 92%%)",
			k4, 100*k4/kmax, kmax)
	}
	if kmax < k1 {
		t.Errorf("more heterogeneity lowered the bound: K=1 %.2fx vs K=max %.2fx", k1, kmax)
	}
	// Models over-estimate vs simulation at the bound (paper: 2.4x vs 1.7x).
	simMax := res.Levels[len(res.Levels)-1].AvgSimGain
	if simMax <= 0 {
		t.Fatal("no simulated gains")
	}
	if simMax > kmax*1.1 {
		t.Errorf("simulation bound %.2fx above model bound %.2fx; paper found the reverse", simMax, kmax)
	}
}

// Claim (Section 4, footnote 1): exhaustive evaluation of the 262,500-
// point space through the models is computationally trivial compared to
// simulation — here, under a minute rather than simulator-years.
func TestClaimExhaustiveSweepCheap(t *testing.T) {
	e := claimExplorer(t)
	preds, err := e.ExhaustivePredict("twolf")
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 262500 {
		t.Fatalf("sweep covered %d designs", len(preds))
	}
	// And the best design by bips^3/w must be a real, valid configuration.
	best, bestEff := -1, 0.0
	for _, p := range preds {
		if p.BIPS <= 0 || p.Watts <= 0 {
			continue
		}
		if eff := metrics.BIPS3W(p.BIPS, p.Watts); eff > bestEff {
			bestEff, best = eff, p.Index
		}
	}
	if best < 0 {
		t.Fatal("no valid designs in sweep")
	}
	cfg := e.StudySpace.Config(e.StudySpace.PointAt(best))
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}
