package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSimulateBaseline(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "10000", "-benchmarks", "gzip"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"configuration:", "19FO4", "gzip", "bips=", "watts=", "power: fe="} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestSimulateWidthVariants(t *testing.T) {
	for _, w := range []string{"2", "4", "8"} {
		var out bytes.Buffer
		if err := run([]string{"-n", "5000", "-width", w, "-benchmarks", "mcf"}, &out); err != nil {
			t.Fatalf("width %s: %v", w, err)
		}
		if !strings.Contains(out.String(), "width="+w) {
			t.Fatalf("width %s not reflected in config line", w)
		}
	}
}

func TestSimulateRejectsBadWidth(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-width", "3"}, &out); err == nil {
		t.Fatal("width 3 accepted")
	}
}

func TestSimulateRejectsBadConfig(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-depth", "100"}, &out); err == nil {
		t.Fatal("absurd depth accepted")
	}
	if err := run([]string{"-l2", "-5"}, &out); err == nil {
		t.Fatal("negative L2 accepted")
	}
}

func TestSimulateUnknownBenchmark(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-benchmarks", "nope"}, &out); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestSimulateParameterOverridesMatter(t *testing.T) {
	runOne := func(args ...string) string {
		var out bytes.Buffer
		if err := run(append(args, "-n", "20000", "-benchmarks", "mcf"), &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	small := runOne("-l2", "256")
	big := runOne("-l2", "4096")
	if small == big {
		t.Fatal("L2 size change produced identical output")
	}
}
