// Command simulate runs the detailed timing and power simulator for a
// single configuration on one or more benchmarks and prints performance,
// power and the activity breakdown — the ground truth the regression
// models are trained against.
//
// Usage:
//
//	simulate [flags]
//
// The default configuration is the paper's POWER4-like baseline
// (Table 3); individual parameters can be overridden with flags.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/arch"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	base := arch.Baseline()
	depth := fs.Int("depth", base.DepthFO4, "pipeline depth in FO4 per stage")
	width := fs.Int("width", base.Width, "decode width (2, 4 or 8; sets queues and FUs)")
	gpr := fs.Int("gpr", base.GPR, "general-purpose physical registers")
	resv := fs.Int("resv", base.ResvFX, "fixed-point reservation stations")
	il1 := fs.Int("il1", base.IL1KB, "I-L1 capacity in KB")
	dl1 := fs.Int("dl1", base.DL1KB, "D-L1 capacity in KB")
	l2 := fs.Int("l2", base.L2KB, "L2 capacity in KB")
	n := fs.Int("n", 100000, "trace length in instructions")
	benchList := fs.String("benchmarks", "", "comma-separated benchmarks (default: full suite)")
	traceFile := fs.String("trace", "", "enable span tracing; write the span log (JSONL) to this file")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceFile != "" {
		obs.Enable(true)
	}
	if *pprofAddr != "" {
		bound, shutdown, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "simulate: pprof listening on http://%s/debug/pprof/\n", bound)
	}

	cfg := base
	cfg.DepthFO4 = *depth
	cfg.GPR = *gpr
	cfg.ResvFX = *resv
	cfg.IL1KB, cfg.DL1KB, cfg.L2KB = *il1, *dl1, *l2
	switch *width {
	case 2:
		cfg.Width, cfg.LSQ, cfg.SQ, cfg.FUPerKind = 2, 15, 14, 1
	case 4:
		cfg.Width, cfg.LSQ, cfg.SQ, cfg.FUPerKind = 4, 30, 28, 2
	case 8:
		cfg.Width, cfg.LSQ, cfg.SQ, cfg.FUPerKind = 8, 45, 42, 4
	default:
		return fmt.Errorf("width must be 2, 4 or 8")
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	benches := trace.Benchmarks()
	if *benchList != "" {
		benches = strings.Split(*benchList, ",")
	}

	fmt.Fprintf(out, "configuration: %s\n\n", cfg)
	for _, bench := range benches {
		sp := obs.Begin("simulate.run", obs.String("bench", bench))
		tr, err := trace.ForBenchmark(bench, *n)
		if err != nil {
			sp.End()
			return err
		}
		res, err := sim.Run(cfg, tr)
		sp.End()
		if err != nil {
			return err
		}
		b := power.Estimate(res)
		a := res.Activity
		fmt.Fprintf(out, "%-8s %.2f GHz, %d stages | ipc=%.3f bips=%.3f delay=%.3fs watts=%.1f bips3/w=%.4f\n",
			bench, res.Params.FreqGHz, res.Params.Stages,
			res.IPC, res.BIPS, res.DelaySeconds(), b.Total(),
			metrics.BIPS3W(res.BIPS, b.Total()))
		fmt.Fprintf(out, "         il1 miss %.2f%%  dl1 miss %.2f%%  l2 miss %.2f%%  branch mispredict %.2f%%\n",
			rate(a.IL1Miss, a.IL1Access), rate(a.DL1Miss, a.DL1Access),
			rate(a.L2Miss, a.L2Access), rate(a.BranchMispredicts, a.BranchLookups))
		fmt.Fprintf(out, "         power: fe=%.1f rf=%.1f iq=%.1f fu=%.1f lsq=%.1f bht=%.1f i$=%.1f d$=%.1f l2=%.1f mem=%.1f clk=%.1f leak=%.1f\n",
			b.FrontEnd, b.RegFile, b.IssueQ, b.FuncUnits, b.LSQ, b.Predictor,
			b.IL1, b.DL1, b.L2, b.Memory, b.Clock, b.Leakage)
	}
	if *traceFile != "" {
		spans := obs.DefaultTracer.Snapshot()
		if err := obs.WriteSpansFile(*traceFile, spans); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "simulate: wrote %d trace spans to %s\n", len(spans), *traceFile)
	}
	return nil
}

func rate(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}
