package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestTracegenAllBenchmarks(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "5000"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, bench := range []string{"ammp", "applu", "equake", "gcc", "gzip", "jbb", "mcf", "mesa", "twolf"} {
		if !strings.Contains(s, bench+": 5000 instructions") {
			t.Fatalf("output missing %s:\n%s", bench, s)
		}
	}
	for _, want := range []string{"mix:", "dependency distance:", "branches:", "footprints:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestTracegenSubset(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "4000", "mcf"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "mcf") || strings.Contains(s, "gzip") {
		t.Fatalf("subset not respected:\n%s", s)
	}
}

func TestTracegenUnknownBenchmark(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"bogus"}, &out); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestTracegenFootprintsDiffer(t *testing.T) {
	// mcf's data footprint should visibly dwarf gzip's in the output.
	var mcfOut, gzipOut bytes.Buffer
	if err := run([]string{"-n", "20000", "mcf"}, &mcfOut); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "20000", "gzip"}, &gzipOut); err != nil {
		t.Fatal(err)
	}
	if mcfOut.String() == gzipOut.String() {
		t.Fatal("benchmarks produced identical descriptions")
	}
}

func TestTracegenWritesTraceFiles(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-n", "3000", "-out", dir, "gzip"}, &out); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "gzip.trace")
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	defer f.Close()
	tr, err := trace.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "gzip" || tr.Len() != 3000 {
		t.Fatalf("reloaded trace %q/%d", tr.Name, tr.Len())
	}
	if !strings.Contains(out.String(), "wrote") {
		t.Fatal("size report missing")
	}
}
