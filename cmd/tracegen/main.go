// Command tracegen synthesizes a workload trace and prints its profile
// statistics: instruction mix, dependency-distance summary, branch
// behaviour, and code/data footprints. Useful for inspecting the
// statistical workload models that substitute for the paper's PowerPC
// traces.
//
// Usage:
//
//	tracegen [-n instructions] [-out dir] [benchmark ...]
//
// With -out, each trace is also serialized to <dir>/<benchmark>.trace in
// the binary format of internal/trace.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	n := fs.Int("n", 100000, "trace length in instructions")
	outDir := fs.String("out", "", "directory to write binary .trace files into")
	traceFile := fs.String("trace", "", "enable span tracing; write the span log (JSONL) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceFile != "" {
		obs.Enable(true)
	}
	benches := fs.Args()
	if len(benches) == 0 {
		benches = trace.Benchmarks()
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	for _, bench := range benches {
		sp := obs.Begin("tracegen.bench", obs.String("bench", bench))
		err := describe(out, bench, *n)
		if err == nil && *outDir != "" {
			err = writeTraceFile(out, *outDir, bench, *n)
		}
		sp.End()
		if err != nil {
			return err
		}
	}
	if *traceFile != "" {
		spans := obs.DefaultTracer.Snapshot()
		if err := obs.WriteSpansFile(*traceFile, spans); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "tracegen: wrote %d trace spans to %s\n", len(spans), *traceFile)
	}
	return nil
}

// writeTraceFile serializes one benchmark's trace and reports its size.
func writeTraceFile(out io.Writer, dir, bench string, n int) error {
	tr, err := trace.ForBenchmark(bench, n)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, bench+".trace")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	written, err := tr.WriteTo(f)
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "  wrote %s (%.1f KB)\n", path, float64(written)/1024)
	return nil
}

func describe(out io.Writer, bench string, n int) error {
	tr, err := trace.ForBenchmark(bench, n)
	if err != nil {
		return err
	}
	mix := tr.Mix()
	var (
		depDists   []float64
		taken      int
		branches   int
		dataBlocks = map[uint32]bool{}
		codeBlocks = map[uint32]bool{}
	)
	for _, in := range tr.Insts {
		if in.Dep1 > 0 {
			depDists = append(depDists, float64(in.Dep1))
		}
		codeBlocks[in.PC/trace.BlockBytes] = true
		switch in.Kind {
		case trace.OpBranch:
			branches++
			if in.Taken {
				taken++
			}
		case trace.OpLoad, trace.OpStore:
			dataBlocks[in.Addr/trace.BlockBytes] = true
		}
	}
	dep := stats.Summarize(depDists)
	fmt.Fprintf(out, "%s: %d instructions\n", bench, tr.Len())
	fmt.Fprintf(out, "  mix: int %.1f%%  fp %.1f%%  load %.1f%%  store %.1f%%  branch %.1f%%\n",
		100*mix[trace.OpInt], 100*mix[trace.OpFP], 100*mix[trace.OpLoad],
		100*mix[trace.OpStore], 100*mix[trace.OpBranch])
	fmt.Fprintf(out, "  dependency distance: median %.0f  mean %.1f  p75 %.0f\n", dep.Med, dep.Mean, dep.Q3)
	if branches > 0 {
		fmt.Fprintf(out, "  branches: %.1f%% taken\n", 100*float64(taken)/float64(branches))
	}
	fmt.Fprintf(out, "  footprints: code %d blocks (%.0f KB), data %d blocks (%.0f KB)\n",
		len(codeBlocks), float64(len(codeBlocks)*trace.BlockBytes)/1024,
		len(dataBlocks), float64(len(dataBlocks)*trace.BlockBytes)/1024)
	return nil
}
