package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fastArgs keeps the end-to-end CLI tests quick.
func fastArgs(extra ...string) []string {
	base := []string{
		"-samples", "120",
		"-validation", "20",
		"-tracelen", "15000",
		"-benchmarks", "gzip,mcf",
	}
	return append(base, extra...)
}

func TestRunRequiresCommand(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Fatal("missing command accepted")
	}
	if err := run([]string{"-samples", "10", "bogus"}, &out); err == nil {
		t.Fatal("unknown command accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-samples", "0", "train"}, &out); err == nil {
		t.Fatal("zero samples accepted")
	}
	if err := run([]string{"-benchmarks", "nope", "train"}, &out); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if err := run([]string{"-workers", "-3", "train"}, &out); err == nil {
		t.Fatal("negative workers accepted")
	}
	if err := run([]string{"-workers", "two", "train"}, &out); err == nil {
		t.Fatal("non-numeric workers accepted")
	}
}

// TestWorkersFlag covers -workers parsing end to end: an explicit worker
// count and the 0 = all-cores default must both train successfully.
func TestWorkersFlag(t *testing.T) {
	for _, workers := range []string{"1", "2", "0"} {
		var out bytes.Buffer
		args := []string{
			"-samples", "60", "-validation", "10", "-tracelen", "8000",
			"-benchmarks", "gzip", "-workers", workers, "train",
		}
		if err := run(args, &out); err != nil {
			t.Fatalf("-workers %s: %v", workers, err)
		}
		if !strings.Contains(out.String(), "gzip performance model") {
			t.Fatalf("-workers %s produced no model output", workers)
		}
	}
}

func TestRunTrain(t *testing.T) {
	var out bytes.Buffer
	if err := run(fastArgs("train"), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"gzip performance model", "mcf power model", "R2="} {
		if !strings.Contains(s, want) {
			t.Fatalf("train output missing %q", want)
		}
	}
}

func TestRunValidate(t *testing.T) {
	var out bytes.Buffer
	if err := run(fastArgs("validate"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 1") {
		t.Fatal("validate output missing Figure 1")
	}
}

func TestRunParetoNoSim(t *testing.T) {
	var out bytes.Buffer
	if err := run(fastArgs("-nosim", "-delaytargets", "10", "pareto"), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Figure 2", "Figure 3", "Table 2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("pareto output missing %q", want)
		}
	}
	if strings.Contains(s, "Figure 4") {
		t.Fatal("-nosim should skip Figure 4")
	}
}

func TestRunDepthNoSim(t *testing.T) {
	var out bytes.Buffer
	if err := run(fastArgs("-nosim", "depth"), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Figure 5a", "Figure 5b", "optimal depth"} {
		if !strings.Contains(s, want) {
			t.Fatalf("depth output missing %q", want)
		}
	}
}

func TestRunHeteroNoSim(t *testing.T) {
	var out bytes.Buffer
	if err := run(fastArgs("-nosim", "hetero"), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Figure 8", "Figure 9"} {
		if !strings.Contains(s, want) {
			t.Fatalf("hetero output missing %q", want)
		}
	}
}

func TestRunSearch(t *testing.T) {
	var out bytes.Buffer
	if err := run(fastArgs("search"), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Heuristic search") || !strings.Contains(s, "262500") {
		t.Fatalf("search output incomplete:\n%s", s)
	}
}

func TestSaveAndLoadModels(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "models.json")

	var out bytes.Buffer
	if err := run(fastArgs("-savemodels", path, "train"), &out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("models file not written: %v", err)
	}

	// Reload without training: output must not mention training.
	out.Reset()
	if err := run(fastArgs("-loadmodels", path, "train"), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "loaded models") {
		t.Fatal("load path not taken")
	}
	if strings.Contains(s, "trained in") {
		t.Fatal("loading still trained")
	}
	if !strings.Contains(s, "gzip performance model") {
		t.Fatal("loaded models unusable")
	}
}

func TestLoadModelsMissingFile(t *testing.T) {
	var out bytes.Buffer
	if err := run(fastArgs("-loadmodels", "/nonexistent/models.json", "train"), &out); err == nil {
		t.Fatal("missing model file accepted")
	}
}

func TestCSVOutput(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run(fastArgs("-nosim", "-csvdir", dir, "report"), &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"figure1.csv", "figure2_gzip.csv", "figure2_mcf.csv",
		"figure3_gzip.csv", "table2.csv", "figure5a.csv", "figure9.csv",
	} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		if len(bytes.Split(data, []byte{'\n'})) < 3 {
			t.Fatalf("%s looks empty", name)
		}
	}
	// The figure 2 scatter covers the whole exploration space.
	data, err := os.ReadFile(filepath.Join(dir, "figure2_gzip.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(data, []byte{'\n'})
	if lines < 200000 {
		t.Fatalf("figure2 has only %d rows", lines)
	}
}
