package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// shardArgs is the cheap configuration the shard CLI tests share: two
// benchmarks so dataset shards cross a benchmark boundary, a training
// budget just above the model's 21 coefficients, and short traces.
func shardArgs(extra ...string) []string {
	base := []string{
		"-samples", "40",
		"-validation", "5",
		"-tracelen", "2000",
		"-benchmarks", "gzip,mcf",
	}
	return append(base, extra...)
}

func TestShardFlagValidation(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	cases := [][]string{
		{"-shard", "0/2", "-checkpoint", dir, "train"},                // not a shardable command
		{"-merge", "2", "-checkpoint", dir, "validate"},               // not a shardable command
		{"-distribute", "2", "-checkpoint", dir, "report"},            // not a shardable command
		{"-shard", "0/2", "dataset"},                                  // missing -checkpoint
		{"-checkpoint", dir, "-shard", "0/2", "-merge", "2", "sweep"}, // mutually exclusive
		{"-checkpoint", dir, "-shard", "2/2", "dataset"},              // index out of range
		{"-checkpoint", dir, "-shard", "nope", "dataset"},             // malformed spec
		{"-checkpoint", dir, "-merge", "-1", "dataset"},               // negative count
		{"dataset"}, // dataset requires -checkpoint
		{"sweep"},   // sweep requires -checkpoint
		{"-checkpoint", dir, "-stall-timeout", "2s", "sweep"},                      // stall-timeout requires -distribute
		{"-checkpoint", dir, "-distribute", "2", "-stall-timeout", "-1s", "sweep"}, // negative timeout
		{"-checkpoint", dir, "-distribute", "2", "-speculate", "sweep"},            // speculate requires -stall-timeout
		{"-checkpoint", dir, "-shardsuffix", ".spec", "sweep"},                     // shardsuffix is worker-only
	}
	for _, args := range cases {
		if err := run(shardArgs(args...), &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// mustEqualFiles asserts two checkpoint files are byte-identical.
func mustEqualFiles(t *testing.T, a, b string) {
	t.Helper()
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Fatalf("%s and %s differ (%d vs %d bytes)", a, b, len(da), len(db))
	}
}

// TestDatasetShardMergeByteIdentical drives the dataset command through
// the CLI in both modes: one unsharded run, and three shard runs (the
// middle shard spans the gzip/mcf boundary) plus a merge. The standard
// training checkpoints must come out byte-identical, and a subsequent
// -resume train must fit models from them without simulating (the train
// phase's manifest stats carry no sim_evaluations).
func TestDatasetShardMergeByteIdentical(t *testing.T) {
	golden, dir := t.TempDir(), t.TempDir()
	var out bytes.Buffer

	if err := run(shardArgs("-checkpoint", golden, "dataset"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dataset shard 0/1 complete") ||
		!strings.Contains(out.String(), "merged 1 dataset shard(s)") {
		t.Fatalf("unsharded dataset output unexpected:\n%s", out.String())
	}

	for i := 0; i < 3; i++ {
		out.Reset()
		spec := fmt.Sprintf("%d/3", i)
		if err := run(shardArgs("-checkpoint", dir, "-shard", spec, "dataset"), &out); err != nil {
			t.Fatalf("shard %s: %v", spec, err)
		}
		if strings.Contains(out.String(), "merged") {
			t.Fatalf("explicit shard %s merged on its own:\n%s", spec, out.String())
		}
	}
	out.Reset()
	if err := run(shardArgs("-checkpoint", dir, "-merge", "3", "dataset"), &out); err != nil {
		t.Fatal(err)
	}

	for _, bench := range []string{"gzip", "mcf"} {
		mustEqualFiles(t,
			filepath.Join(golden, "train-"+bench+".ckpt"),
			filepath.Join(dir, "train-"+bench+".ckpt"))
	}

	// Training from the merged checkpoints must not simulate.
	manifest := filepath.Join(dir, "manifest.json")
	out.Reset()
	if err := run(shardArgs("-checkpoint", dir, "-resume", "-manifest", manifest, "train"), &out); err != nil {
		t.Fatal(err)
	}
	man, err := obs.ReadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range man.Phases {
		if ph.Name == "train" && ph.Stats["sim_evaluations"] != 0 {
			t.Fatalf("resume train simulated %d times", ph.Stats["sim_evaluations"])
		}
	}
	if len(man.Shards) != 0 {
		t.Fatalf("unsharded train manifest carries shard records: %+v", man.Shards)
	}
}

// TestSweepShardMergeByteIdentical drives the sweep command through
// shard and merge modes and asserts the merged sweep checkpoints are
// byte-identical to an unsharded run's. Worker manifests must record
// the owned range.
func TestSweepShardMergeByteIdentical(t *testing.T) {
	golden, dir := t.TempDir(), t.TempDir()
	args := func(extra ...string) []string {
		// One benchmark keeps the three training passes cheap.
		return append([]string{
			"-samples", "40", "-validation", "5", "-tracelen", "2000",
			"-benchmarks", "gzip",
		}, extra...)
	}
	var out bytes.Buffer
	if err := run(args("-checkpoint", golden, "sweep"), &out); err != nil {
		t.Fatal(err)
	}

	manifest := filepath.Join(dir, "worker0.json")
	if err := run(args("-checkpoint", dir, "-shard", "0/2", "-manifest", manifest, "sweep"), &out); err != nil {
		t.Fatal(err)
	}
	if err := run(args("-checkpoint", dir, "-shard", "1/2", "sweep"), &out); err != nil {
		t.Fatal(err)
	}
	if err := run(args("-checkpoint", dir, "-merge", "2", "sweep"), &out); err != nil {
		t.Fatal(err)
	}
	mustEqualFiles(t,
		filepath.Join(golden, "sweep-gzip.ckpt"),
		filepath.Join(dir, "sweep-gzip.ckpt"))

	man, err := obs.ReadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Shards) != 1 {
		t.Fatalf("worker manifest has %d shard records, want 1", len(man.Shards))
	}
	rec := man.Shards[0]
	if rec.Domain != "sweep" || rec.Index != 0 || rec.Count != 2 || rec.Lo != 0 || rec.Hi <= 0 {
		t.Fatalf("worker shard record unexpected: %+v", rec)
	}
}

// TestHelperProcess is the distributed-worker stand-in: when re-executed
// by the coordinator tests (DSE_WORKER_HELPER=1) it runs the real CLI on
// the arguments after "--" and exits with the CLI's status, exactly like
// the shipped binary would.
func TestHelperProcess(t *testing.T) {
	if os.Getenv("DSE_WORKER_HELPER") != "1" {
		return
	}
	sep := -1
	for i, a := range os.Args {
		if a == "--" {
			sep = i
			break
		}
	}
	if sep < 0 {
		fmt.Fprintln(os.Stderr, "helper: no -- separator")
		os.Exit(2)
	}
	if err := run(os.Args[sep+1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dse:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// TestDistributedDatasetKillAndRestart runs `dse -distribute 2 dataset`
// with real worker processes (the helper above), injecting a fatal
// fault into shard 0's first attempt via REPRO_FAULT_PLAN. The
// coordinator must restart that worker, the run must converge, the
// merged checkpoints must be byte-identical to an unsharded run, and
// the coordinator manifest must record both shards — the failed one
// with two attempts.
func TestDistributedDatasetKillAndRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("forks worker processes")
	}
	golden, dir := t.TempDir(), t.TempDir()
	var out bytes.Buffer
	if err := run(shardArgs("-checkpoint", golden, "dataset"), &out); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	attempts := make(map[string]int)
	orig := workerCommand
	workerCommand = func(args []string) *exec.Cmd {
		spec := ""
		for i, a := range args {
			if a == "-shard" && i+1 < len(args) {
				spec = args[i+1]
			}
		}
		mu.Lock()
		attempts[spec]++
		n := attempts[spec]
		mu.Unlock()
		cmd := exec.Command(os.Args[0],
			append([]string{"-test.run=^TestHelperProcess$", "--"}, args...)...)
		cmd.Env = append(os.Environ(), "DSE_WORKER_HELPER=1")
		if spec == "0/2" && n == 1 {
			// Kill the first attempt of shard 0 mid-simulation; the restart
			// runs fault-free and resumes from the shard's checkpoint.
			cmd.Env = append(cmd.Env, "REPRO_FAULT_PLAN=eval.invoke:fatal:every=1,after=10,count=1")
		}
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		return cmd
	}
	defer func() { workerCommand = orig }()

	manifest := filepath.Join(dir, "coordinator.json")
	out.Reset()
	if err := run(shardArgs("-checkpoint", dir, "-distribute", "2", "-manifest", manifest, "dataset"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "distributed dataset across 2 workers (3 attempts)") {
		t.Fatalf("coordinator output unexpected:\n%s", out.String())
	}

	for _, bench := range []string{"gzip", "mcf"} {
		mustEqualFiles(t,
			filepath.Join(golden, "train-"+bench+".ckpt"),
			filepath.Join(dir, "train-"+bench+".ckpt"))
	}

	man, err := obs.ReadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Shards) != 2 {
		t.Fatalf("coordinator manifest has %d shard records, want 2", len(man.Shards))
	}
	for _, rec := range man.Shards {
		if rec.Status != "ok" {
			t.Fatalf("shard %d status %q", rec.Index, rec.Status)
		}
		wantAttempts := 1
		if rec.Index == 0 {
			wantAttempts = 2
		}
		if rec.Attempts != wantAttempts {
			t.Fatalf("shard %d took %d attempts, want %d", rec.Index, rec.Attempts, wantAttempts)
		}
	}
	if man.Counters["shard.worker_restarts"] < 1 {
		t.Fatalf("no worker restart counted: %v", man.Counters)
	}
}

// TestDistributedSweepHangStallRestart runs `dse -distribute 2 sweep`
// with a hang fault injected into shard 0's first attempt: the worker
// completes two checkpoint chunks (its beacon advancing) and then
// blocks forever at core.sweep.shard. The coordinator's beacon monitor
// must declare the stall after -stall-timeout, kill the worker, and
// restart it; the restart resumes from the shard checkpoint and the
// merged sweep output stays byte-identical to an unsharded fault-free
// run. The stall must be visible in the manifest: the stalled-worker
// counter and the shard record's stall count.
func TestDistributedSweepHangStallRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("forks worker processes")
	}
	golden, dir := t.TempDir(), t.TempDir()
	models := filepath.Join(t.TempDir(), "models.json")
	args := func(extra ...string) []string {
		// One benchmark and preloaded models keep each sweep chunk well
		// under the stall timeout, so only the injected hang stalls.
		return append([]string{
			"-samples", "40", "-validation", "5", "-tracelen", "2000",
			"-benchmarks", "gzip",
		}, extra...)
	}
	var out bytes.Buffer
	if err := run(args("-checkpoint", golden, "-savemodels", models, "train"), &out); err != nil {
		t.Fatal(err)
	}
	if err := run(args("-checkpoint", golden, "-loadmodels", models, "sweep"), &out); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	attempts := make(map[string]int)
	orig := workerCommand
	workerCommand = func(cargs []string) *exec.Cmd {
		spec := ""
		for i, a := range cargs {
			if a == "-shard" && i+1 < len(cargs) {
				spec = cargs[i+1]
			}
		}
		mu.Lock()
		attempts[spec]++
		n := attempts[spec]
		mu.Unlock()
		cmd := exec.Command(os.Args[0],
			append([]string{"-test.run=^TestHelperProcess$", "--"}, cargs...)...)
		cmd.Env = append(os.Environ(), "DSE_WORKER_HELPER=1")
		if spec == "0/2" && n == 1 {
			// Hang shard 0's first attempt at its third checkpoint chunk:
			// the beacon advances twice, then freezes. Only the monitor
			// can recover this worker — it will never exit on its own.
			cmd.Env = append(cmd.Env, "REPRO_FAULT_PLAN=core.sweep.shard:hang:every=1,after=2,count=1")
		}
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		return cmd
	}
	defer func() { workerCommand = orig }()

	manifest := filepath.Join(dir, "coordinator.json")
	out.Reset()
	if err := run(args("-checkpoint", dir, "-loadmodels", models,
		"-distribute", "2", "-stall-timeout", "2s", "-manifest", manifest, "sweep"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "distributed sweep across 2 workers (3 attempts)") {
		t.Fatalf("coordinator output unexpected:\n%s", out.String())
	}

	mustEqualFiles(t,
		filepath.Join(golden, "sweep-gzip.ckpt"),
		filepath.Join(dir, "sweep-gzip.ckpt"))

	man, err := obs.ReadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if man.Counters["shard.workers_stalled"] < 1 {
		t.Fatalf("no stalled worker counted: %v", man.Counters)
	}
	if len(man.Shards) != 2 {
		t.Fatalf("coordinator manifest has %d shard records, want 2", len(man.Shards))
	}
	for _, rec := range man.Shards {
		if rec.Status != "ok" {
			t.Fatalf("shard %d status %q", rec.Index, rec.Status)
		}
		if rec.Index == 0 && (rec.Stalls < 1 || rec.Attempts != 2) {
			t.Fatalf("shard 0 record missing stall trail: %+v", rec)
		}
	}
}
