package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/shard"
)

// workerCommand builds the process for one distributed-worker attempt.
// It is a variable so tests can substitute a helper-process constructor;
// the default re-executes this binary with the rewritten argument list.
// Worker stdout is routed to stderr: study output on the coordinator's
// stdout stays bit-identical to a single-process run.
var workerCommand = func(args []string) *exec.Cmd {
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	cmd := exec.Command(exe, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	return cmd
}

// shardRun executes the dataset and sweep commands in their four modes:
// unsharded (compute shard 0/1, then merge immediately so the standard
// checkpoint files appear), worker (-shard i/n: compute one slice into
// its own checkpoint), merge (-merge n: reassemble completed shards),
// and coordinator (-distribute n: fork one worker per shard, restart
// failures from their checkpoints, then merge).
type shardRun struct {
	e          *core.Explorer
	out        io.Writer
	man        *obs.Manifest
	domain     string // "dataset" or "sweep"
	idx, count int
	explicit   bool // -shard was given: leave merging to the caller
	merge      int
	distribute int
	args       []string
	workerArgs func(i, n int, suffix string) []string

	// Liveness supervision (coordinator mode): -stall-timeout arms the
	// beacon monitor, -speculate the tail-straggler backup attempts.
	stallTimeout  time.Duration
	speculate     bool
	checkpointDir string
}

// specSuffix is appended to a speculative backup attempt's shard
// checkpoint and beacon filenames so it never races the primary on
// files; a winning backup's checkpoints are promoted (renamed) over the
// canonical names before the merge.
const specSuffix = ".spec"

func (s *shardRun) run() error {
	switch {
	case s.distribute > 0:
		return s.runDistribute()
	case s.merge > 0:
		return s.runMerge(s.merge)
	default:
		return s.runWorker()
	}
}

// shardRange resolves the domain's partition for shard i of n.
func (s *shardRun) shardRange(i, n int) shard.Range {
	if s.domain == "dataset" {
		return s.e.DatasetShardRange(i, n)
	}
	return s.e.SweepShardRange(i, n)
}

// domainSize is the total flat-index count the partition covers.
func (s *shardRun) domainSize() int {
	if s.domain == "dataset" {
		return len(s.e.Benchmarks()) * s.e.Options().TrainSamples
	}
	return s.e.StudySpace.Size()
}

// recordShard appends one shard record to the run manifest, when one is
// being written.
func (s *shardRun) recordShard(rec obs.ShardRecord) {
	if s.man != nil {
		s.man.Shards = append(s.man.Shards, rec)
	}
}

// runWorker computes this process's shard — the whole domain when the
// run is unsharded — and merges immediately in the unsharded case.
func (s *shardRun) runWorker() error {
	ctx := context.Background()
	r := s.shardRange(s.idx, s.count)
	s.recordShard(obs.ShardRecord{
		Domain: s.domain, Index: s.idx, Count: s.count, Lo: r.Lo, Hi: r.Hi,
	})
	start := time.Now()
	var err error
	if s.domain == "dataset" {
		err = s.e.BuildDatasetShard(ctx, s.idx, s.count)
	} else {
		for _, bench := range s.e.Benchmarks() {
			if err = s.e.SweepShard(ctx, bench, s.idx, s.count); err != nil {
				break
			}
		}
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "%s shard %d/%d complete: %d of %d indices in %.1fs\n",
		s.domain, s.idx, s.count, r.Len(), s.domainSize(), time.Since(start).Seconds())
	if !s.explicit {
		return s.runMerge(1)
	}
	return nil
}

// runMerge reassembles n completed shard checkpoints into the standard
// checkpoint files, byte-identical to a single-process run's.
func (s *shardRun) runMerge(n int) error {
	start := time.Now()
	var err error
	if s.domain == "dataset" {
		err = s.e.MergeDatasetShards(n)
	} else {
		err = s.e.MergeSweepShards(n)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "merged %d %s shard(s) into standard checkpoints in %.1fs\n",
		n, s.domain, time.Since(start).Seconds())
	return nil
}

// runDistribute supervises one worker process per shard — restarting
// failures, which resume from their own checkpoints — then merges. The
// per-shard progress stream goes to stderr as it happens and into the
// manifest's shard records at the end.
func (s *shardRun) runDistribute() error {
	n := s.distribute
	coord := &shard.Coordinator{
		N: n,
		Command: func(i, n int) *exec.Cmd {
			return workerCommand(s.workerArgs(i, n, ""))
		},
		StallTimeout: s.stallTimeout,
		OnEvent: func(ev shard.Event) {
			switch ev.Kind {
			case shard.EventStart:
				fmt.Fprintf(os.Stderr, "dse: %s shard %d/%d attempt %d starting\n",
					s.domain, ev.Shard, n, ev.Attempt)
			case shard.EventExit:
				fmt.Fprintf(os.Stderr, "dse: %s shard %d/%d attempt %d finished in %.1fs\n",
					s.domain, ev.Shard, n, ev.Attempt, ev.Elapsed.Seconds())
			case shard.EventRestart:
				fmt.Fprintf(os.Stderr, "dse: %s shard %d/%d attempt %d failed after %.1fs (%v); restarting from checkpoint\n",
					s.domain, ev.Shard, n, ev.Attempt, ev.Elapsed.Seconds(), ev.Err)
			case shard.EventFail:
				fmt.Fprintf(os.Stderr, "dse: %s shard %d/%d gave up after attempt %d: %v\n",
					s.domain, ev.Shard, n, ev.Attempt, ev.Err)
			case shard.EventStalled:
				fmt.Fprintf(os.Stderr, "dse: %s shard %d/%d attempt %d stalled (no beacon progress for %s); killed, restarting from checkpoint\n",
					s.domain, ev.Shard, n, ev.Attempt, s.stallTimeout)
			case shard.EventSpeculative:
				fmt.Fprintf(os.Stderr, "dse: %s shard %d/%d straggling after %.1fs; launching speculative backup attempt\n",
					s.domain, ev.Shard, n, ev.Elapsed.Seconds())
			}
		},
	}
	if s.stallTimeout > 0 {
		coord.BeaconPath = func(i, n int) string {
			return shard.BeaconPath(s.checkpointDir, s.domain, i, n)
		}
	}
	if s.speculate {
		coord.SpecCommand = func(i, n int) *exec.Cmd {
			return workerCommand(s.workerArgs(i, n, specSuffix))
		}
		coord.OnSpecWin = func(i, n int) error {
			return s.e.PromoteShardCheckpoints(s.domain, i, n, specSuffix)
		}
	}
	workers, err := coord.Run(context.Background())
	for _, w := range workers {
		r := s.shardRange(w.Shard, n)
		rec := obs.ShardRecord{
			Domain: s.domain, Index: w.Shard, Count: n, Lo: r.Lo, Hi: r.Hi,
			Attempts: w.Attempts, Seconds: w.Elapsed.Seconds(), Status: "ok",
			Stalls: w.Stalls, Speculated: w.Speculated, SpecWon: w.SpecWon,
		}
		if w.Err != nil {
			rec.Status = "failed"
		}
		s.recordShard(rec)
	}
	if err != nil {
		return err
	}
	attempts := 0
	for _, w := range workers {
		attempts += w.Attempts
	}
	fmt.Fprintf(s.out, "distributed %s across %d workers (%d attempts)\n",
		s.domain, n, attempts)
	return s.runMerge(n)
}
