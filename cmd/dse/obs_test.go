package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestManifestEmission runs a study with -manifest and checks the
// emitted JSON parses under the schema version and records the run's
// environment, phases and engine work.
func TestManifestEmission(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")

	var out bytes.Buffer
	if err := run(fastArgs("-nosim", "-manifest", path, "pareto"), &out); err != nil {
		t.Fatal(err)
	}

	m, err := obs.ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tool != "dse" || m.Command != "pareto" {
		t.Fatalf("tool/command = %q/%q", m.Tool, m.Command)
	}
	if m.Seed != 2007 {
		t.Fatalf("seed = %d, want the default 2007", m.Seed)
	}
	if m.SpaceSize != 262500 || m.SampleSpaceSize != 375000 {
		t.Fatalf("space sizes = %d/%d, want 262500/375000", m.SpaceSize, m.SampleSpaceSize)
	}
	if len(m.Benchmarks) != 2 || m.Benchmarks[0] != "gzip" || m.Benchmarks[1] != "mcf" {
		t.Fatalf("benchmarks = %v", m.Benchmarks)
	}
	if m.Workers <= 0 {
		t.Fatalf("workers = %d, want resolved positive count", m.Workers)
	}
	if m.WallSeconds <= 0 {
		t.Fatalf("wall seconds = %v", m.WallSeconds)
	}

	// Phases: training then the study, each with engine-stat deltas that
	// must not double-count (train does all the simulating; the model-only
	// pareto study must not report any simulator evaluations).
	if len(m.Phases) != 2 || m.Phases[0].Name != "train" || m.Phases[1].Name != "pareto" {
		t.Fatalf("phases = %+v, want [train pareto]", m.Phases)
	}
	if got := m.Phases[0].Stats["sim_evaluations"]; got != 2*120 {
		t.Fatalf("train phase sim_evaluations = %d, want 240", got)
	}
	// The study simulates exactly one optimum per benchmark; anything near
	// 240 would mean the phase re-reported training's work.
	if got := m.Phases[1].Stats["sim_evaluations"]; got != 2 {
		t.Fatalf("pareto phase sim_evaluations = %d, want 2 (epoch double-count?)", got)
	}
	if got := m.Phases[1].Stats["model_swept_points"]; got != 2*262500 {
		t.Fatalf("pareto phase model_swept_points = %d, want 525000", got)
	}

	// Simulation counters are always on, even without -trace.
	if m.Counters["sim.runs"] < 2*120 {
		t.Fatalf("counters = %v, want sim.runs >= 240", m.Counters)
	}
}

// TestObservabilityDoesNotChangeOutput is the golden-equivalence check:
// enabling -trace, -manifest and -pprof must not change a single output
// byte of a study (all diagnostics go to stderr or files).
func TestObservabilityDoesNotChangeOutput(t *testing.T) {
	dir := t.TempDir()
	models := filepath.Join(dir, "models.json")

	// Train once so both runs share identical models and skip the
	// wall-clock-dependent "trained in Xs" line.
	var train bytes.Buffer
	if err := run(fastArgs("-savemodels", models, "train"), &train); err != nil {
		t.Fatal(err)
	}

	var plain bytes.Buffer
	if err := run(fastArgs("-loadmodels", models, "-nosim", "validate"), &plain); err != nil {
		t.Fatal(err)
	}

	prevEnabled := obs.Enabled()
	defer obs.Enable(prevEnabled)
	spanLog := filepath.Join(dir, "spans.jsonl")
	manifest := filepath.Join(dir, "manifest.json")
	var observed bytes.Buffer
	err := run(fastArgs(
		"-loadmodels", models, "-nosim",
		"-trace", spanLog,
		"-manifest", manifest,
		"-pprof", "127.0.0.1:0",
		"validate"), &observed)
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(plain.Bytes(), observed.Bytes()) {
		t.Fatalf("observability changed study output.\nplain:\n%s\nobserved:\n%s",
			plain.String(), observed.String())
	}

	// The side files exist and carry real content.
	spans, err := os.ReadFile(spanLog)
	if err != nil {
		t.Fatalf("span log not written: %v", err)
	}
	if !strings.Contains(string(spans), `"name":"core.validate"`) {
		t.Fatal("span log missing the core.validate span")
	}
	m, err := obs.ReadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if m.TraceSpans <= 0 {
		t.Fatalf("manifest trace_spans = %d, want > 0 when tracing", m.TraceSpans)
	}
	if len(m.Histograms) == 0 {
		t.Fatal("manifest has no latency histograms despite tracing on")
	}
}

// TestTraceFlagWritesSpanLog checks the span log is valid JSONL with
// nested spans from the whole pipeline.
func TestTraceFlagWritesSpanLog(t *testing.T) {
	prevEnabled := obs.Enabled()
	defer obs.Enable(prevEnabled)

	dir := t.TempDir()
	spanLog := filepath.Join(dir, "spans.jsonl")
	var out bytes.Buffer
	if err := run(fastArgs("-trace", spanLog, "train"), &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(spanLog)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 3 {
		t.Fatalf("span log has only %d lines", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "{") || !strings.HasSuffix(l, "}") {
			t.Fatalf("span log line is not a JSON object: %s", l)
		}
	}
	s := string(data)
	for _, want := range []string{"core.train", "core.dataset", "regression.fit"} {
		if !strings.Contains(s, `"name":"`+want+`"`) {
			t.Fatalf("span log missing %q span", want)
		}
	}
}
