// Command dse reproduces the paper's design-space studies end to end:
// it samples the 375,000-point design space, simulates the samples, fits
// per-benchmark performance and power regression models, and runs the
// pareto-frontier, pipeline-depth and multiprocessor-heterogeneity
// analyses, printing the paper's tables and figures as text.
//
// Usage:
//
//	dse [flags] <command>
//
// Commands:
//
//	train     fit models and print their summaries
//	validate  model validation error distributions   (Figure 1)
//	pareto    pareto frontier study                   (Figures 2-4, Table 2)
//	depth     pipeline depth study                    (Figures 5-7)
//	hetero    multiprocessor heterogeneity study      (Table 4, Figures 8-9)
//	search    heuristic search vs exhaustive sweep    (future-work extension)
//	report    run everything
//	dataset   build the training dataset checkpoints (shardable)
//	sweep     run the exhaustive model sweeps        (shardable)
//
// The dataset and sweep commands partition across processes: -shard i/n
// computes one deterministic slice into its own checkpoint, -merge n
// reassembles completed shards into the standard checkpoint files
// (byte-identical to a single-process run), and -distribute n forks n
// workers, restarts failures from their checkpoints, and merges.
//
// Flags control the training budget; see -help.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/core/depthstudy"
	"repro/internal/core/heterostudy"
	"repro/internal/core/paretostudy"
	"repro/internal/eval"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/search"
	"repro/internal/shard"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dse:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dse", flag.ContinueOnError)
	samples := fs.Int("samples", 1000, "training designs sampled uniformly at random (paper: 1000)")
	validation := fs.Int("validation", 100, "validation designs (paper: 100)")
	tracelen := fs.Int("tracelen", 100000, "synthetic trace length per benchmark")
	seed := fs.Uint64("seed", 2007, "sampling seed")
	workers := fs.Int("workers", 0, "evaluation worker goroutines for simulation batches and model sweeps (0 = all cores)")
	tile := fs.Int("tile", 0, "sweep tile size: contiguous design points handed to a worker at a time (0 = default; output is tile-invariant)")
	benchList := fs.String("benchmarks", "", "comma-separated benchmark subset (default: full suite)")
	noSim := fs.Bool("nosim", false, "skip simulator validation passes (model-only, much faster)")
	targets := fs.Int("delaytargets", 40, "delay bins for the discretized pareto frontier")
	saveModels := fs.String("savemodels", "", "write trained models to this JSON file")
	csvDir := fs.String("csvdir", "", "also write each figure's data series as CSV into this directory")
	loadModels := fs.String("loadmodels", "", "load models from this JSON file instead of training")
	traceFile := fs.String("trace", "", "enable span tracing and progress lines; write the span log (JSONL) to this file")
	manifestFile := fs.String("manifest", "", "write a run manifest (JSON) describing this invocation to this file")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	checkpointDir := fs.String("checkpoint", "", "write crash-safe training/sweep checkpoints into this directory")
	resume := fs.Bool("resume", false, "resume from checkpoints in the -checkpoint directory (results are bit-identical to an uninterrupted run)")
	deadline := fs.Duration("deadline", 0, "per-batch evaluation deadline (0 = none); an expired batch fails with a deadline error")
	shardSpec := fs.String("shard", "", "compute only shard i/n of the dataset or sweep work domain (e.g. 0/4; requires -checkpoint; dataset and sweep commands only)")
	mergeN := fs.Int("merge", 0, "merge n completed shard checkpoints into the standard checkpoint files (requires -checkpoint; dataset and sweep commands only)")
	distribute := fs.Int("distribute", 0, "coordinator mode: fork n worker processes (one per shard), restart failures from their checkpoints, then merge (requires -checkpoint; dataset and sweep commands only)")
	stallTimeout := fs.Duration("stall-timeout", 0, "with -distribute: kill and restart (with resume) a worker whose progress beacon shows no change for this long; must exceed worker startup plus one checkpoint chunk (0 = no liveness monitoring)")
	speculate := fs.Bool("speculate", false, "with -distribute and -stall-timeout: launch a speculative backup attempt for tail stragglers; the first finisher wins and the merged output is unchanged")
	shardSuffix := fs.String("shardsuffix", "", "internal: append this suffix to shard checkpoint and beacon filenames (how a speculative backup attempt avoids racing the primary on files)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one command: train, validate, pareto, depth, hetero, search, report, dataset or sweep")
	}
	cmd := fs.Arg(0)

	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", *workers)
	}
	if *tile < 0 {
		return fmt.Errorf("-tile must be >= 0, got %d", *tile)
	}

	shardable := cmd == "dataset" || cmd == "sweep"
	shardModes := 0
	for _, on := range []bool{*shardSpec != "", *mergeN > 0, *distribute > 0} {
		if on {
			shardModes++
		}
	}
	if shardModes > 1 {
		return fmt.Errorf("-shard, -merge and -distribute are mutually exclusive")
	}
	if shardModes == 1 {
		if !shardable {
			return fmt.Errorf("-shard/-merge/-distribute apply to the dataset and sweep commands only")
		}
		if *checkpointDir == "" {
			return fmt.Errorf("-shard/-merge/-distribute require -checkpoint (shard outputs are checkpoints)")
		}
	}
	if *mergeN < 0 || *distribute < 0 {
		return fmt.Errorf("-merge and -distribute must be >= 0")
	}
	if *stallTimeout < 0 {
		return fmt.Errorf("-stall-timeout must be >= 0")
	}
	if *stallTimeout > 0 && *distribute == 0 {
		return fmt.Errorf("-stall-timeout requires -distribute (the coordinator runs the beacon monitor)")
	}
	if *speculate && (*distribute == 0 || *stallTimeout == 0) {
		return fmt.Errorf("-speculate requires -distribute and -stall-timeout (the straggler projection reads beacons)")
	}
	if *shardSuffix != "" && *shardSpec == "" {
		return fmt.Errorf("-shardsuffix applies to -shard workers only")
	}
	shardIdx, shardCount := 0, 1
	if *shardSpec != "" {
		var err error
		if shardIdx, shardCount, err = shard.ParseSpec(*shardSpec); err != nil {
			return err
		}
	}
	if shardable && *checkpointDir == "" {
		return fmt.Errorf("the %s command requires -checkpoint (its outputs are checkpoint files)", cmd)
	}

	// Observability. Tracing (spans, latency histograms, progress lines)
	// is off by default and costs one atomic load per operation; all
	// diagnostic output goes to stderr so study output on `out` is
	// bit-identical with or without these flags.
	if *traceFile != "" {
		obs.Enable(true)
	}
	if *pprofAddr != "" {
		bound, shutdown, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "dse: pprof listening on http://%s/debug/pprof/\n", bound)
	}
	opts := core.DefaultOptions()
	opts.TrainSamples = *samples
	opts.ValidationSamples = *validation
	opts.TraceLen = *tracelen
	opts.Seed = *seed
	opts.Workers = *workers
	opts.SweepTile = *tile
	if *benchList != "" {
		opts.Benchmarks = strings.Split(*benchList, ",")
	}
	if *resume && *checkpointDir == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	if *checkpointDir != "" {
		if err := os.MkdirAll(*checkpointDir, 0o755); err != nil {
			return err
		}
		opts.CheckpointDir = *checkpointDir
		opts.Resume = *resume
	}
	opts.ShardSuffix = *shardSuffix
	opts.BatchTimeout = *deadline

	e, err := core.New(opts)
	if err != nil {
		return err
	}

	// The run manifest records what ran over what and where the time went:
	// one JSON per invocation, with per-phase engine-counter deltas cut by
	// StatsEpoch so sequential phases never double-count.
	var man *obs.Manifest
	if *manifestFile != "" {
		man = obs.NewManifest("dse", cmd, args)
		man.Seed = *seed
		man.SpaceSize = e.StudySpace.Size()
		man.SampleSpaceSize = e.SampleSpace.Size()
		man.Benchmarks = e.Benchmarks()
		man.Workers = e.Options().Workers
	}
	phase := func(name string, fn func() error) error {
		if man == nil {
			return fn()
		}
		pt := man.StartPhase(name)
		err := fn()
		sim, model := e.StatsEpoch()
		pt.End(engineStatsMap(sim, model))
		return err
	}

	// Dataset building needs no models; sweep merging and coordination
	// reassemble or supervise shard checkpoints without predicting. Only
	// a sweep that actually computes points needs trained models in this
	// process (distributed sweep workers train in their own processes,
	// resuming the shared dataset checkpoints when present).
	needModels := !(cmd == "dataset" || (cmd == "sweep" && (*mergeN > 0 || *distribute > 0)))

	if !needModels {
		// Skip training entirely.
	} else if *loadModels != "" {
		err = phase("load_models", func() error {
			f, err := os.Open(*loadModels)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := e.LoadModels(f); err != nil {
				return err
			}
			fmt.Fprintf(out, "loaded models from %s\n\n", *loadModels)
			return nil
		})
		if err != nil {
			return err
		}
	} else {
		err = phase("train", func() error {
			start := time.Now()
			fmt.Fprintf(out, "training %d-sample models on %d benchmarks (trace length %d)...\n",
				opts.TrainSamples, len(e.Benchmarks()), opts.TraceLen)
			if err := e.Train(); err != nil {
				return err
			}
			fmt.Fprintf(out, "trained in %.1fs\n\n", time.Since(start).Seconds())
			return nil
		})
		if err != nil {
			return err
		}
	}
	if *saveModels != "" {
		f, err := os.Create(*saveModels)
		if err != nil {
			return err
		}
		if err := e.SaveModels(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "saved models to %s\n\n", *saveModels)
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	switch cmd {
	case "train":
		err = phase("summaries", func() error { return cmdTrain(e, out) })
	case "validate":
		err = phase("validate", func() error { return cmdValidate(e, out, *csvDir) })
	case "pareto":
		err = phase("pareto", func() error { return cmdPareto(e, out, *targets, !*noSim, *csvDir) })
	case "depth":
		err = phase("depth", func() error { return cmdDepth(e, out, !*noSim, *csvDir) })
	case "hetero":
		err = phase("hetero", func() error { return cmdHetero(e, out, !*noSim, *csvDir) })
	case "search":
		err = phase("search", func() error { return cmdSearch(e, out) })
	case "dataset", "sweep":
		sh := &shardRun{
			e: e, out: out, man: man, domain: cmd,
			idx: shardIdx, count: shardCount, explicit: *shardSpec != "",
			merge: *mergeN, distribute: *distribute, args: args,
			stallTimeout: *stallTimeout, speculate: *speculate,
			checkpointDir: *checkpointDir,
		}
		// Worker argv is reconstructed from the parsed flags (not the raw
		// argument list), so every worker inherits exactly the options that
		// shape the run identity plus -resume — a restarted worker picks up
		// at its own checkpoint instead of redoing its shard. A non-empty
		// suffix builds a speculative backup attempt, which writes its
		// shard files (and diagnostics) under suffixed names.
		sh.workerArgs = func(i, n int, suffix string) []string {
			wargs := []string{
				"-samples", fmt.Sprint(*samples),
				"-validation", fmt.Sprint(*validation),
				"-tracelen", fmt.Sprint(*tracelen),
				"-seed", fmt.Sprint(*seed),
				"-workers", fmt.Sprint(*workers),
				"-tile", fmt.Sprint(*tile),
				"-checkpoint", *checkpointDir,
				"-resume",
			}
			if *benchList != "" {
				wargs = append(wargs, "-benchmarks", *benchList)
			}
			if *deadline != 0 {
				wargs = append(wargs, "-deadline", deadline.String())
			}
			if *loadModels != "" {
				wargs = append(wargs, "-loadmodels", *loadModels)
			}
			if *traceFile != "" {
				wargs = append(wargs, "-trace", fmt.Sprintf("%s.shard%d%s", *traceFile, i, suffix))
			}
			if *manifestFile != "" {
				wargs = append(wargs, "-manifest", fmt.Sprintf("%s.shard%d%s", *manifestFile, i, suffix))
			}
			if suffix != "" {
				wargs = append(wargs, "-shardsuffix", suffix)
			}
			return append(wargs, "-shard", fmt.Sprintf("%d/%d", i, n), cmd)
		}
		err = phase(cmd, sh.run)
	case "report":
		for _, st := range []struct {
			name string
			fn   func() error
		}{
			{"validate", func() error { return cmdValidate(e, out, *csvDir) }},
			{"pareto", func() error { return cmdPareto(e, out, *targets, !*noSim, *csvDir) }},
			{"depth", func() error { return cmdDepth(e, out, !*noSim, *csvDir) }},
			{"hetero", func() error { return cmdHetero(e, out, !*noSim, *csvDir) }},
		} {
			if err = phase(st.name, st.fn); err != nil {
				break
			}
		}
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		return err
	}

	if man != nil {
		var tr *obs.Tracer
		if *traceFile != "" {
			tr = obs.DefaultTracer
		}
		man.Finish(obs.DefaultRegistry, tr)
		if err := man.WriteFile(*manifestFile); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "dse: wrote run manifest to %s\n", *manifestFile)
	}
	if *traceFile != "" {
		spans := obs.DefaultTracer.Snapshot()
		if err := obs.WriteSpansFile(*traceFile, spans); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "dse: wrote %d trace spans to %s (%d recorded in total)\n",
			len(spans), *traceFile, obs.DefaultTracer.Total())
	}
	return nil
}

// engineStatsMap flattens both engines' counter deltas into the generic
// stats map a manifest phase carries, dropping zero entries.
func engineStatsMap(sim, model eval.EngineStats) map[string]int64 {
	m := make(map[string]int64)
	set := func(k string, v int64) {
		if v != 0 {
			m[k] = v
		}
	}
	set("sim_evaluations", sim.Evaluations)
	set("sim_batches", sim.BatchCalls)
	set("sim_cache_hits", sim.CacheHits)
	set("sim_cache_misses", sim.CacheMisses)
	set("sim_warm_hits", sim.WarmHits)
	set("sim_warm_misses", sim.WarmMisses)
	set("sim_panics_recovered", sim.PanicsRecovered)
	set("sim_retries", sim.Retries)
	set("sim_guard_checks", sim.GuardChecks)
	set("sim_guard_divergences", sim.GuardDivergences)
	if sim.Degraded {
		set("sim_degraded", 1)
	}
	set("model_evaluations", model.Evaluations)
	set("model_batches", model.BatchCalls)
	set("model_swept_points", model.SweptPoints)
	set("model_panics_recovered", model.PanicsRecovered)
	set("model_retries", model.Retries)
	set("model_guard_checks", model.GuardChecks)
	set("model_guard_divergences", model.GuardDivergences)
	if model.Degraded {
		set("model_degraded", 1)
	}
	if len(m) == 0 {
		return nil
	}
	return m
}

// writeCSV opens dir/name and hands the file to emit.
func writeCSV(dir, name string, emit func(io.Writer) error) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cmdTrain(e *core.Explorer, out io.Writer) error {
	for _, bench := range e.Benchmarks() {
		perf, pow, err := e.Models(bench)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "=== %s performance model ===\n%s\n", bench, perf.Summary())
		fmt.Fprintf(out, "=== %s power model ===\n%s\n", bench, pow.Summary())
		if assoc, err := e.PredictorAssociations(bench); err == nil {
			t := report.NewTable(
				fmt.Sprintf("%s predictor associations (Spearman rank correlation)", bench),
				"predictor", "perf rho", "power rho")
			for _, a := range assoc {
				t.AddRow(a.Predictor,
					fmt.Sprintf("%+.3f", a.PerfRho),
					fmt.Sprintf("%+.3f", a.PowerRho))
			}
			fmt.Fprintln(out, t.String())
		}
	}
	return nil
}

func cmdValidate(e *core.Explorer, out io.Writer, csvDir string) error {
	rep, err := e.Validate(0)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, report.Figure1(rep))
	return writeCSV(csvDir, "figure1.csv", func(w io.Writer) error {
		return report.Figure1CSV(w, rep)
	})
}

func cmdPareto(e *core.Explorer, out io.Writer, targets int, simulate bool, csvDir string) error {
	results, err := paretostudy.RunSuite(e, paretostudy.Options{
		DelayTargets:     targets,
		SimulateFrontier: simulate,
	})
	if err != nil {
		return err
	}
	// Figure 2 for the paper's two representative benchmarks when
	// available, otherwise the first benchmark.
	shown := 0
	for _, bench := range []string{"ammp", "mcf"} {
		if r, ok := results[bench]; ok {
			fmt.Fprintln(out, report.Figure2(e.StudySpace, r))
			fmt.Fprintln(out, report.Figure3(r))
			shown++
		}
	}
	if shown == 0 {
		for _, bench := range e.Benchmarks() {
			fmt.Fprintln(out, report.Figure2(e.StudySpace, results[bench]))
			fmt.Fprintln(out, report.Figure3(results[bench]))
			break
		}
	}
	if simulate {
		fmt.Fprintln(out, report.Figure4(results))
	}
	fmt.Fprintln(out, report.Table2(results))
	if csvDir != "" {
		for bench, r := range results {
			r := r
			if err := writeCSV(csvDir, "figure2_"+bench+".csv", func(w io.Writer) error {
				return report.Figure2CSV(w, e.StudySpace, r)
			}); err != nil {
				return err
			}
			if err := writeCSV(csvDir, "figure3_"+bench+".csv", func(w io.Writer) error {
				return report.Figure3CSV(w, r)
			}); err != nil {
				return err
			}
		}
		if err := writeCSV(csvDir, "table2.csv", func(w io.Writer) error {
			return report.Table2CSV(w, results)
		}); err != nil {
			return err
		}
	}
	return nil
}

func cmdDepth(e *core.Explorer, out io.Writer, simulate bool, csvDir string) error {
	results, err := depthstudy.RunSuite(e, depthstudy.Options{SimulateValidation: simulate})
	if err != nil {
		return err
	}
	avg, err := depthstudy.Average(results)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, report.Figure5a(avg))
	fmt.Fprintln(out, report.Figure5b(results, e.StudySpace))
	if simulate {
		fmt.Fprintln(out, report.Figure6(avg))
		for _, bench := range []string{"gzip", "mcf"} {
			if r, ok := results[bench]; ok {
				fmt.Fprintln(out, report.Figure7(r))
			}
		}
	}
	return writeCSV(csvDir, "figure5a.csv", func(w io.Writer) error {
		return report.Figure5aCSV(w, avg)
	})
}

// cmdSearch contrasts heuristic search over the models against the
// exhaustive 262,500-point sweep, the paper's proposed extension for
// larger design spaces.
func cmdSearch(e *core.Explorer, out io.Writer) error {
	space := e.StudySpace
	t := report.NewTable("Heuristic search vs exhaustive prediction (modeled bips^3/w optimum)",
		"bench", "exhaustive best", "hill-climb best", "evals", "match")
	for _, bench := range e.Benchmarks() {
		preds, err := e.ExhaustivePredict(bench)
		if err != nil {
			return err
		}
		bestEff := 0.0
		for _, p := range preds {
			if p.BIPS <= 0 || p.Watts <= 0 {
				continue
			}
			if eff := metrics.BIPS3W(p.BIPS, p.Watts); eff > bestEff {
				bestEff = eff
			}
		}
		// Neighborhoods are scored as batches on the evaluation engine,
		// so each hill-climbing step's candidate moves run concurrently.
		obj := func(cfgs []arch.Config) ([]float64, error) {
			preds, err := e.PredictBatch(context.Background(), eval.RequestsFor(cfgs, bench))
			if err != nil {
				return nil, err
			}
			scores := make([]float64, len(preds))
			for i, p := range preds {
				if p.BIPS > 0 && p.Watts > 0 {
					scores[i] = metrics.BIPS3W(p.BIPS, p.Watts)
				}
			}
			return scores, nil
		}
		res, err := search.HillClimbBatch(space, obj, search.Options{Seed: e.Options().Seed, Restarts: 12})
		if err != nil {
			return err
		}
		t.AddRow(bench,
			fmt.Sprintf("%.4g", bestEff),
			fmt.Sprintf("%.4g", res.BestScore),
			fmt.Sprintf("%d", res.Evaluations),
			fmt.Sprintf("%.1f%%", 100*res.BestScore/bestEff),
		)
	}
	fmt.Fprintln(out, t.String())
	fmt.Fprintf(out, "exhaustive sweep evaluates %d designs per benchmark\n", space.Size())
	return nil
}

func cmdHetero(e *core.Explorer, out io.Writer, simulate bool, csvDir string) error {
	res, err := heterostudy.Run(e, nil, heterostudy.Options{
		SimulateValidation: simulate,
		Seed:               e.Options().Seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(out, report.Table4(res))
	fmt.Fprintln(out, report.Figure8(res))
	fmt.Fprintln(out, report.Figure9(res, e.Benchmarks()))
	return writeCSV(csvDir, "figure9.csv", func(w io.Writer) error {
		return report.Figure9CSV(w, res, e.Benchmarks())
	})
}
