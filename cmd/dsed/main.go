// Command dsed is the evaluation-as-a-service daemon: it loads (or
// trains) the per-benchmark regression models once and then serves
// predict / simulate / sweep / pareto / healthz queries over HTTP/JSON,
// coalescing concurrent requests into engine batches. docs/API.md is the
// endpoint reference.
//
// Usage:
//
//	dsed [flags]             serve until SIGTERM/SIGINT (graceful drain)
//	dsed -bench -url U ...   load-test a running daemon, write BENCH_serve.json
//
// Model lifecycle: -loadmodels serves a model set written by
// `dse -savemodels`; without it the daemon trains at startup with the
// usual budget flags (and -savemodels can persist the result so later
// reloads and restarts skip training). SIGHUP or POST /v1/reload hot
// swaps the models from -loadmodels without dropping in-flight requests.
//
// Operational flags: -maxinflight (admission control, 429 beyond it),
// -coalesce/-coalescemax (batching window), -deadline (per-request 504),
// -drain (shutdown grace), -prewarm (build the default sweep/pareto
// views in the background after every load/reload), plus the standard
// observability trio -trace/-manifest/-pprof. The run manifest written at exit carries
// per-endpoint request counters and engine-stat deltas for the whole
// serving session.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "dsed:", err)
		os.Exit(1)
	}
}

// control lets tests drive the daemon lifecycle in-process: ready is
// called with the bound address once serving, and cancelling ctx
// triggers the same graceful drain as SIGTERM.
type control struct {
	ctx   context.Context
	ready func(addr string)
}

func run(args []string, out io.Writer, ctrl *control) error {
	fs := flag.NewFlagSet("dsed", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	loadModels := fs.String("loadmodels", "", "serve models from this JSON file (written by dse -savemodels); required for reload")
	saveModels := fs.String("savemodels", "", "after training at startup, also write the models to this JSON file")
	samples := fs.Int("samples", 1000, "training designs when training at startup (no -loadmodels)")
	validation := fs.Int("validation", 100, "held-out validation designs when training at startup")
	tracelen := fs.Int("tracelen", 100000, "synthetic trace length per benchmark (simulate endpoint cost)")
	seed := fs.Uint64("seed", 2007, "sampling seed")
	benchList := fs.String("benchmarks", "", "comma-separated benchmark subset (default: full suite)")
	workers := fs.Int("workers", 0, "evaluation worker goroutines (0 = all cores)")
	checkpointDir := fs.String("checkpoint", "", "crash-safe checkpoints for startup training (see dse -checkpoint)")
	resume := fs.Bool("resume", false, "resume startup training from -checkpoint")
	maxInflight := fs.Int("maxinflight", serve.DefaultMaxInFlight, "admission control: concurrent work requests beyond this are rejected with 429 (<0 disables)")
	coalesce := fs.Duration("coalesce", serve.DefaultCoalesceWindow, "batching window: how long the first request of a batch waits for company (<0 disables waiting)")
	coalesceMax := fs.Int("coalescemax", serve.DefaultCoalesceMax, "fire a batch early once it holds this many design points")
	deadline := fs.Duration("deadline", 30*time.Second, "per-request evaluation deadline; expiry returns 504 (0 = none)")
	drain := fs.Duration("drain", 15*time.Second, "graceful-drain grace period on SIGTERM/SIGINT")
	prewarm := fs.Bool("prewarm", false, "build each generation's default sweep/pareto views in the background after load/reload, so the first request hits the cache")
	traceFile := fs.String("trace", "", "enable span tracing; write the span log (JSONL) to this file at exit")
	manifestFile := fs.String("manifest", "", "write a run manifest (JSON) describing the serving session to this file at exit")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address")

	benchMode := fs.Bool("bench", false, "load-test mode: drive a running daemon instead of serving")
	benchURL := fs.String("url", "", "bench: daemon base URL (e.g. http://127.0.0.1:8080)")
	benchDur := fs.Duration("duration", 5*time.Second, "bench: measured duration per endpoint")
	benchConc := fs.Int("concurrency", 8, "bench: closed-loop client workers per endpoint")
	benchEndpoints := fs.String("endpoints", "", "bench: comma-separated endpoints to drive (default healthz,predict,sweep,pareto)")
	benchBench := fs.String("benchname", "", "bench: benchmark name in request bodies (default: daemon's first)")
	benchPoints := fs.Int("reqpoints", 1, "bench: design points per predict/simulate request")
	benchOut := fs.String("out", "BENCH_serve.json", "bench: report output path")

	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments %v (dsed takes flags only)", fs.Args())
	}
	if *benchMode {
		return runBench(out, benchOptions(*benchURL, *benchDur, *benchConc, *benchEndpoints, *benchBench, *benchPoints, *seed), *benchOut)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", *workers)
	}
	if *samples <= 0 {
		return fmt.Errorf("-samples must be positive, got %d", *samples)
	}
	if *resume && *checkpointDir == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}

	if *traceFile != "" {
		obs.Enable(true)
	}
	if *pprofAddr != "" {
		bound, shutdown, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "dsed: pprof listening on http://%s/debug/pprof/\n", bound)
	}

	opts := core.DefaultOptions()
	opts.TrainSamples = *samples
	opts.ValidationSamples = *validation
	opts.TraceLen = *tracelen
	opts.Seed = *seed
	opts.Workers = *workers
	// The engine-level batch deadline backs the serve-level request
	// deadline: even work that escapes the request path (cold sweeps)
	// stays bounded.
	opts.BatchTimeout = *deadline
	if *benchList != "" {
		opts.Benchmarks = strings.Split(*benchList, ",")
	}
	if *checkpointDir != "" {
		if err := os.MkdirAll(*checkpointDir, 0o755); err != nil {
			return err
		}
		opts.CheckpointDir = *checkpointDir
		opts.Resume = *resume
	}

	var man *obs.Manifest
	if *manifestFile != "" {
		man = obs.NewManifest("dsed", "serve", args)
		man.Seed = *seed
	}

	// The loader builds one serving generation per call: every reload is
	// a whole fresh Explorer, so in-flight requests keep the generation
	// they started on and a failed load changes nothing.
	trained := false
	loader := func() (*core.Explorer, error) {
		e, err := core.New(opts)
		if err != nil {
			return nil, err
		}
		if *loadModels != "" {
			f, err := os.Open(*loadModels)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			if err := e.LoadModels(f); err != nil {
				return nil, err
			}
			return e, nil
		}
		if trained {
			return nil, errors.New("reload requires -loadmodels (startup-trained models have no file to reload from)")
		}
		fmt.Fprintf(os.Stderr, "dsed: training %d-sample models on %d benchmarks (trace length %d)...\n",
			*samples, len(e.Benchmarks()), *tracelen)
		start := time.Now()
		if err := e.Train(); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "dsed: trained in %.1fs\n", time.Since(start).Seconds())
		trained = true
		if *saveModels != "" {
			f, err := os.Create(*saveModels)
			if err != nil {
				return nil, err
			}
			if err := e.SaveModels(f); err != nil {
				f.Close()
				return nil, err
			}
			if err := f.Close(); err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "dsed: saved models to %s\n", *saveModels)
		}
		return e, nil
	}

	phase := "load_models"
	if *loadModels == "" {
		phase = "train"
	}
	var pt *obs.PhaseTimer
	if man != nil {
		pt = man.StartPhase(phase)
	}
	srv, err := serve.New(loader, serve.Options{
		MaxInFlight:    *maxInflight,
		CoalesceWindow: *coalesce,
		CoalesceMax:    *coalesceMax,
		RequestTimeout: *deadline,
		PrewarmViews:   *prewarm,
	})
	if err != nil {
		return err
	}
	e, _ := srv.Generation()
	if man != nil {
		sim, model := e.StatsEpoch()
		pt.End(engineStatsMap(sim, model))
		man.SpaceSize = e.StudySpace.Size()
		man.SampleSpaceSize = e.SampleSpace.Size()
		man.Benchmarks = e.Benchmarks()
		man.Workers = e.Options().Workers
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	fmt.Fprintf(os.Stderr, "dsed: serving %v on http://%s/ (generation 1)\n", e.Benchmarks(), bound)
	if ctrl != nil && ctrl.ready != nil {
		ctrl.ready(bound)
	}

	// Signal plumbing: TERM/INT drain and exit; HUP hot swaps the models.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT, syscall.SIGHUP)
	defer signal.Stop(sigc)
	stopCtx := context.Background()
	if ctrl != nil && ctrl.ctx != nil {
		stopCtx = ctrl.ctx
	}
	go func() {
		for {
			select {
			case sig := <-sigc:
				if sig == syscall.SIGHUP {
					if gen, err := srv.Reload(); err != nil {
						fmt.Fprintf(os.Stderr, "dsed: reload failed (still serving generation %d): %v\n", gen, err)
					} else {
						fmt.Fprintf(os.Stderr, "dsed: reloaded models (generation %d)\n", gen)
					}
					continue
				}
				fmt.Fprintf(os.Stderr, "dsed: %v received, draining (grace %v)\n", sig, *drain)
			case <-stopCtx.Done():
				fmt.Fprintf(os.Stderr, "dsed: stop requested, draining (grace %v)\n", *drain)
			}
			dctx, cancel := context.WithTimeout(context.Background(), *drain)
			if err := srv.Shutdown(dctx); err != nil {
				fmt.Fprintf(os.Stderr, "dsed: drain incomplete: %v\n", err)
			}
			cancel()
			return
		}
	}()

	var spt *obs.PhaseTimer
	if man != nil {
		spt = man.StartPhase("serve")
	}
	err = srv.Serve(ln)
	st := srv.Stats()
	fmt.Fprintf(out, "dsed: served %d requests (%d rejected, %d timeouts, %d errors), %d reloads, generation %d\n",
		st.Requests, st.Rejected, st.Timeouts, st.Errors, st.Reloads, st.Generation)

	if man != nil {
		e, _ := srv.Generation()
		sim, model := e.StatsEpoch()
		m := engineStatsMap(sim, model)
		if m == nil {
			m = make(map[string]int64)
		}
		m["serve_requests"] = st.Requests
		m["serve_rejected"] = st.Rejected
		m["serve_timeouts"] = st.Timeouts
		m["serve_predict_batches"] = st.PredictBatches
		m["serve_predict_coalesced"] = st.PredictCoalesced
		m["serve_reloads"] = st.Reloads
		m["serve_view_hits"] = st.ViewHits
		m["serve_view_misses"] = st.ViewMisses
		m["serve_view_builds"] = st.ViewBuilds
		spt.End(m)
		var tr *obs.Tracer
		if *traceFile != "" {
			tr = obs.DefaultTracer
		}
		man.Finish(obs.DefaultRegistry, tr)
		if werr := man.WriteFile(*manifestFile); werr != nil {
			return werr
		}
		fmt.Fprintf(os.Stderr, "dsed: wrote run manifest to %s\n", *manifestFile)
	}
	if *traceFile != "" {
		spans := obs.DefaultTracer.Snapshot()
		if werr := obs.WriteSpansFile(*traceFile, spans); werr != nil {
			return werr
		}
		fmt.Fprintf(os.Stderr, "dsed: wrote %d trace spans to %s\n", len(spans), *traceFile)
	}
	return err
}

// engineStatsMap mirrors dse's manifest flattening for the daemon's
// phases, dropping zero entries.
func engineStatsMap(sim, model eval.EngineStats) map[string]int64 {
	m := make(map[string]int64)
	set := func(k string, v int64) {
		if v != 0 {
			m[k] = v
		}
	}
	set("sim_evaluations", sim.Evaluations)
	set("sim_batches", sim.BatchCalls)
	set("sim_cache_hits", sim.CacheHits)
	set("sim_cache_misses", sim.CacheMisses)
	set("sim_warm_hits", sim.WarmHits)
	set("sim_warm_misses", sim.WarmMisses)
	set("model_evaluations", model.Evaluations)
	set("model_batches", model.BatchCalls)
	set("model_swept_points", model.SweptPoints)
	if len(m) == 0 {
		return nil
	}
	return m
}
