package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

// Shared model fixture: one tiny trained model set, written once per test
// process, served by every daemon the tests start.
var fixtureDir string

func TestMain(m *testing.M) {
	if os.Getenv("DSED_HELPER") == "1" {
		// Helper invocations run the daemon on the parent's model file; no
		// fixture of their own.
		os.Exit(m.Run())
	}
	dir, err := os.MkdirTemp("", "dsed-test-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fixtureDir = dir
	if err := writeFixtureModels(filepath.Join(dir, "models.json")); err != nil {
		fmt.Fprintln(os.Stderr, "building model fixture:", err)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func writeFixtureModels(path string) error {
	opts := core.DefaultOptions()
	opts.TrainSamples = 40
	opts.ValidationSamples = 5
	opts.TraceLen = 2000
	opts.Benchmarks = []string{"gzip"}
	e, err := core.New(opts)
	if err != nil {
		return err
	}
	if err := e.Train(); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := e.SaveModels(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func modelsFile() string { return filepath.Join(fixtureDir, "models.json") }

// daemonArgs are the fast common flags every in-process daemon test uses.
func daemonArgs(extra ...string) []string {
	base := []string{
		"-addr", "127.0.0.1:0",
		"-loadmodels", modelsFile(),
		"-benchmarks", "gzip",
		"-drain", "10s",
	}
	return append(base, extra...)
}

// startDaemon runs the daemon in-process and returns its base URL, its
// output buffer, a stop function (graceful drain) and the run-result
// channel.
func startDaemon(t *testing.T, args []string) (string, *bytes.Buffer, func(), chan error) {
	t.Helper()
	var out bytes.Buffer
	ready := make(chan string, 1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(args, &out, &control{ctx: ctx, ready: func(addr string) { ready <- addr }})
	}()
	select {
	case addr := <-ready:
		stop := func() {
			cancel()
			select {
			case err := <-done:
				done <- err
			case <-time.After(30 * time.Second):
				t.Error("daemon did not stop within 30s")
			}
		}
		return "http://" + addr, &out, stop, done
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v\n%s", err, out.String())
	case <-time.After(60 * time.Second):
		t.Fatal("daemon never became ready")
	}
	panic("unreachable")
}

func TestFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"positional"}, &out, nil); err == nil {
		t.Fatal("positional argument accepted")
	}
	if err := run([]string{"-workers", "-1"}, &out, nil); err == nil {
		t.Fatal("negative workers accepted")
	}
	if err := run([]string{"-samples", "0"}, &out, nil); err == nil {
		t.Fatal("zero samples accepted")
	}
	if err := run([]string{"-resume"}, &out, nil); err == nil {
		t.Fatal("-resume without -checkpoint accepted")
	}
	if err := run([]string{"-bench"}, &out, nil); err == nil {
		t.Fatal("-bench without -url accepted")
	}
	if err := run([]string{"-not-a-flag"}, &out, nil); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestDaemonEndToEnd(t *testing.T) {
	manifest := filepath.Join(t.TempDir(), "manifest.json")
	url, out, stop, done := startDaemon(t, daemonArgs("-manifest", manifest))

	resp, err := http.Get(url + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz serve.HealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.Status != "ok" || hz.Generation != 1 || len(hz.Benchmarks) != 1 || hz.Benchmarks[0] != "gzip" {
		t.Fatalf("healthz = %+v", hz)
	}

	resp, err = http.Post(url+"/v1/predict", "application/json",
		strings.NewReader(`{"bench":"gzip","indices":[0,17]}`))
	if err != nil {
		t.Fatal(err)
	}
	var pr serve.PointResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(pr.Results) != 2 {
		t.Fatalf("predict = %d %+v", resp.StatusCode, pr)
	}

	// Hot reload over HTTP bumps the generation.
	resp, err = http.Post(url+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rr serve.ReloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rr.Generation != 2 {
		t.Fatalf("reload = %d %+v", resp.StatusCode, rr)
	}

	stop()
	if err := <-done; err != nil {
		t.Fatalf("daemon exit = %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "served") {
		t.Fatalf("missing serve summary in output:\n%s", out.String())
	}

	// The manifest recorded the serving session.
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	var man struct {
		Tool   string `json:"tool"`
		Phases []struct {
			Name  string           `json:"name"`
			Stats map[string]int64 `json:"stats"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatal(err)
	}
	if man.Tool != "dsed" {
		t.Fatalf("manifest tool = %q", man.Tool)
	}
	var serveCounters map[string]int64
	for _, ph := range man.Phases {
		if ph.Name == "serve" {
			serveCounters = ph.Stats
		}
	}
	if serveCounters == nil {
		t.Fatalf("manifest has no serve phase: %s", data)
	}
	if serveCounters["serve_requests"] < 1 || serveCounters["serve_reloads"] != 1 {
		t.Fatalf("serve phase counters = %v", serveCounters)
	}
}

func TestTrainAtStartupAndSaveModels(t *testing.T) {
	saved := filepath.Join(t.TempDir(), "trained.json")
	args := []string{
		"-addr", "127.0.0.1:0",
		"-samples", "40", "-validation", "5", "-tracelen", "2000",
		"-benchmarks", "gzip",
		"-savemodels", saved,
	}
	url, out, stop, done := startDaemon(t, args)
	resp, err := http.Post(url+"/v1/predict", "application/json",
		strings.NewReader(`{"bench":"gzip","indices":[3]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict on startup-trained daemon = %d", resp.StatusCode)
	}
	if _, err := os.Stat(saved); err != nil {
		t.Fatalf("-savemodels wrote nothing: %v", err)
	}
	// Reload has no file to reload from (the models were trained, not
	// loaded): it must fail and keep serving.
	resp, err = http.Post(url+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("reload without -loadmodels = %d, want 500", resp.StatusCode)
	}
	resp, err = http.Get(url + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after failed reload = %d", resp.StatusCode)
	}
	stop()
	if err := <-done; err != nil {
		t.Fatalf("daemon exit = %v\n%s", err, out.String())
	}
}

func TestBenchModeEndToEnd(t *testing.T) {
	url, _, stop, _ := startDaemon(t, daemonArgs())
	defer stop()

	report := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var out bytes.Buffer
	err := run([]string{
		"-bench",
		"-url", url,
		"-duration", "300ms",
		"-concurrency", "2",
		"-endpoints", "healthz,predict",
		"-out", report,
	}, &out, nil)
	if err != nil {
		t.Fatalf("bench mode: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "predict") || !strings.Contains(out.String(), "qps") {
		t.Fatalf("bench table missing:\n%s", out.String())
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep serve.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Endpoints) != 2 {
		t.Fatalf("report endpoints = %+v", rep.Endpoints)
	}
	for _, ep := range rep.Endpoints {
		if ep.QPS <= 0 || ep.Errors > 0 {
			t.Fatalf("endpoint %s: qps = %v, errors = %d", ep.Endpoint, ep.QPS, ep.Errors)
		}
	}
}

// TestDaemonSurvivesFaultsAndSignals is the kill test: a real daemon
// process runs with panics injected into the serving path, takes traffic
// (some of it answered 500), hot reloads on SIGHUP, and still exits 0 on
// SIGTERM.
func TestDaemonSurvivesFaultsAndSignals(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a daemon process")
	}
	cmd := exec.Command(os.Args[0], "-test.run=^TestDsedHelperProcess$", "--",
		"-addr", "127.0.0.1:0",
		"-loadmodels", modelsFile(),
		"-benchmarks", "gzip",
		"-drain", "10s")
	cmd.Env = append(os.Environ(),
		"DSED_HELPER=1",
		"REPRO_FAULT_PLAN=seed=7;serve.request:panic:p=0.25")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() //nolint:errcheck // backstop for early t.Fatal

	// Watch stderr for the serving address and reload confirmations.
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	waitLine := func(substr string) string {
		deadline := time.After(60 * time.Second)
		for {
			select {
			case ln, ok := <-lines:
				if !ok {
					t.Fatalf("daemon stderr closed while waiting for %q", substr)
				}
				if strings.Contains(ln, substr) {
					return ln
				}
			case <-deadline:
				t.Fatalf("timed out waiting for %q on daemon stderr", substr)
			}
		}
	}
	ln := waitLine("serving")
	addr := ln[strings.Index(ln, "http://")+len("http://"):]
	addr = strings.TrimSuffix(strings.Fields(addr)[0], "/")
	url := "http://" + addr

	drive := func(n int) (ok, faulted int) {
		for i := 0; i < n; i++ {
			resp, err := http.Post(url+"/v1/predict", "application/json",
				strings.NewReader(fmt.Sprintf(`{"bench":"gzip","indices":[%d]}`, i)))
			if err != nil {
				t.Fatalf("request %d: daemon gone: %v", i, err)
			}
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				ok++
			case http.StatusInternalServerError:
				faulted++
			default:
				t.Fatalf("request %d: status %d", i, resp.StatusCode)
			}
		}
		return ok, faulted
	}
	ok, faulted := drive(40)
	if ok == 0 {
		t.Fatal("no request survived the fault plan")
	}
	if faulted == 0 {
		t.Fatal("fault plan (p=0.25 panics) never fired in 40 requests")
	}

	// SIGHUP hot swaps the models under the same injected chaos.
	if err := cmd.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	waitLine("generation 2")
	if ok, _ := drive(10); ok == 0 {
		t.Fatal("no request served after SIGHUP reload")
	}

	// SIGTERM drains and exits 0 despite every recovered panic.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM = %v, want success", err)
	}
}

// TestDsedHelperProcess is the spawned daemon: under DSED_HELPER=1 it
// runs the real CLI on the arguments after "--" and exits with its
// status, exactly like the shipped binary.
func TestDsedHelperProcess(t *testing.T) {
	if os.Getenv("DSED_HELPER") != "1" {
		return
	}
	sep := -1
	for i, a := range os.Args {
		if a == "--" {
			sep = i
			break
		}
	}
	if sep < 0 {
		fmt.Fprintln(os.Stderr, "helper: no -- separator")
		os.Exit(2)
	}
	if err := run(os.Args[sep+1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "dsed:", err)
		os.Exit(1)
	}
	os.Exit(0)
}
