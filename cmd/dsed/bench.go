package main

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/serve"
)

// benchOptions maps the -bench flag values onto serve.BenchOptions.
func benchOptions(url string, dur time.Duration, conc int, endpoints, bench string, points int, seed uint64) serve.BenchOptions {
	opts := serve.BenchOptions{
		URL:              url,
		Duration:         dur,
		Concurrency:      conc,
		Bench:            bench,
		PointsPerRequest: points,
		Seed:             seed,
	}
	if endpoints != "" {
		for _, ep := range strings.Split(endpoints, ",") {
			if ep = strings.TrimSpace(ep); ep != "" {
				opts.Endpoints = append(opts.Endpoints, ep)
			}
		}
	}
	return opts
}

// runBench drives a running daemon, prints the per-endpoint table and
// writes the JSON report.
func runBench(out io.Writer, opts serve.BenchOptions, outPath string) error {
	rep, err := serve.LoadTest(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "dsed bench: %s bench=%s duration=%.0fs concurrency=%d\n",
		rep.URL, rep.Bench, rep.DurationS, rep.Concurrency)
	fmt.Fprintf(out, "%-10s %9s %9s %9s %9s %9s %9s\n",
		"endpoint", "requests", "qps", "p50_ms", "p99_ms", "mean_ms", "rejected")
	for _, ep := range rep.Endpoints {
		fmt.Fprintf(out, "%-10s %9d %9.1f %9.3f %9.3f %9.3f %9d\n",
			ep.Endpoint, ep.Requests, ep.QPS, ep.P50ms, ep.P99ms, ep.MeanMs, ep.Rejected)
		if ep.Errors > 0 {
			fmt.Fprintf(out, "%-10s %d errors\n", "", ep.Errors)
		}
	}
	if outPath != "" {
		if err := rep.WriteFile(outPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "dsed bench: wrote %s\n", outPath)
	}
	return nil
}
